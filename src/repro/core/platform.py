"""Execution platform model (paper §3).

``P`` identical GPUs, each with ``memory`` bytes, every pair connected by a
dedicated full-duplex-free link of ``bandwidth`` bytes/s (as in PipeDream and
the paper, the link serializes the activation and gradient transfers of one
boundary, hence ``C(l) = 2 a_l / β``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Platform", "GB", "GBPS"]

GB = float(2**30)
"""One gibibyte in bytes (the paper's memory unit)."""

GBPS = float(2**30)
"""One gibibyte per second in bytes/s (the paper's bandwidth unit)."""


@dataclass(frozen=True)
class Platform:
    """A homogeneous GPU platform.

    Parameters
    ----------
    n_procs:
        Number of GPUs ``P`` (≥ 1).
    memory:
        Memory capacity ``M`` of each GPU, in bytes.
    bandwidth:
        Point-to-point link bandwidth ``β``, in bytes/s.
    """

    n_procs: int
    memory: float
    bandwidth: float

    def __post_init__(self) -> None:
        for attr in ("n_procs", "memory", "bandwidth"):
            v = getattr(self, attr)
            try:
                finite = math.isfinite(v)
            except TypeError:
                raise ValueError(f"{attr} must be a number, got {v!r}") from None
            if not finite:
                raise ValueError(f"{attr} must be finite, got {v!r}")
        if self.n_procs < 1:
            raise ValueError("need at least one processor")
        if self.memory <= 0:
            raise ValueError("memory must be positive")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    @classmethod
    def of(cls, n_procs: int, memory_gb: float, bandwidth_gbps: float) -> "Platform":
        """Convenience constructor using the paper's units (GB, GB/s)."""
        return cls(n_procs, memory_gb * GB, bandwidth_gbps * GBPS)

    @property
    def P(self) -> int:
        """Alias for :attr:`n_procs` matching the paper's notation."""
        return self.n_procs

    def with_headroom(self, headroom: float) -> "Platform":
        """The same platform with ``headroom`` (a fraction of each GPU's
        memory) reserved as a planning safety margin; ``self`` when zero.
        """
        from .memory import effective_capacity

        capacity = effective_capacity(self.memory, headroom)
        if capacity == self.memory:
            return self
        return Platform(self.n_procs, capacity, self.bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Platform(P={self.n_procs}, M={self.memory / GB:.1f}GB, "
            f"beta={self.bandwidth / GBPS:.0f}GB/s)"
        )
