"""JSON serialization of allocations and periodic patterns.

The optimizer runs once per (network, machine); training jobs then need
the decisions in a durable, tool-agnostic form.  ``pattern_to_dict`` /
``pattern_from_dict`` round-trip everything a runtime needs: the stage
partitioning, the stage→GPU map, and per-operation (resource, start,
duration, shift).
"""

from __future__ import annotations

import json
from pathlib import Path

from .partition import Allocation, Partitioning, Stage
from .pattern import Op, PeriodicPattern

__all__ = [
    "allocation_to_dict",
    "allocation_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "save_pattern",
    "load_pattern",
]


def allocation_to_dict(allocation: Allocation) -> dict:
    return {
        "stages": [[s.start, s.end] for s in allocation.stages],
        "procs": list(allocation.procs),
    }


def allocation_from_dict(data: dict) -> Allocation:
    stages = tuple(Stage(int(a), int(b)) for a, b in data["stages"])
    return Allocation(Partitioning(stages), tuple(int(p) for p in data["procs"]))


def pattern_to_dict(pattern: PeriodicPattern) -> dict:
    return {
        "period": pattern.period,
        "allocation": allocation_to_dict(pattern.allocation),
        "ops": [
            {
                "kind": op.kind,
                "index": op.index,
                "resource": list(op.resource),
                "start": op.start,
                "duration": op.duration,
                "shift": op.shift,
            }
            for op in pattern.ops.values()
        ],
    }


def pattern_from_dict(data: dict) -> PeriodicPattern:
    pattern = PeriodicPattern(
        allocation=allocation_from_dict(data["allocation"]),
        period=float(data["period"]),
    )
    for o in data["ops"]:
        resource = tuple(
            o["resource"][:1] + [int(x) for x in o["resource"][1:]]
        )
        pattern.add(
            Op(
                kind=o["kind"],
                index=int(o["index"]),
                resource=resource,
                start=float(o["start"]),
                duration=float(o["duration"]),
                shift=int(o["shift"]),
            )
        )
    return pattern


def save_pattern(pattern: PeriodicPattern, path: str | Path) -> None:
    """Write a schedule to ``path`` as JSON."""
    Path(path).write_text(json.dumps(pattern_to_dict(pattern), indent=1))


def load_pattern(path: str | Path) -> PeriodicPattern:
    """Read a schedule written by :func:`save_pattern`."""
    return pattern_from_dict(json.loads(Path(path).read_text()))
