"""Shared numerical tolerances for pattern validation and simulation.

PR 2 consolidated the *solver-side* constants (``GROUP_FIT_RTOL`` etc. in
:mod:`repro.algorithms.onef1b`, shared with the reference kernels so both
make bit-identical decisions).  This module does the same for the
*checking* side — analytic pattern validation, the discrete-event
simulator and the certification layer — which previously each carried
their own ``EPS = 1e-9`` and ``tol=1e-6`` defaults.

Values are unchanged from the historical per-module constants; only the
spelling is shared.

Memory-feasibility checks use a *combined* absolute + relative slack
(:func:`memory_slack`).  A purely relative slack ``capacity * (1 + tol)``
misbehaves at both ends of the capacity scale: on multi-GiB platforms it
silently grants tens of kilobytes, while on tiny synthetic platforms
(the ``toy<L>`` networks) it collapses below the float error of the peak
summation itself, so whether an exactly-at-capacity pattern passes is
decided by rounding luck rather than by the model.  Anchoring the slack
at :data:`MEMORY_ABS_TOL` bytes makes the small-capacity behaviour
deterministic without changing the verdict on realistic platforms, where
the relative term dominates.
"""

from __future__ import annotations

__all__ = ["EPS", "CHECK_RTOL", "MEMORY_ABS_TOL", "memory_slack"]

#: Event/normalization epsilon for period folding and batch counting
#: (historically ``core.pattern.EPS`` and ``sim.engine._EPS``).
EPS = 1e-9

#: Default relative tolerance of the analytic validation checks, the
#: discrete-event simulator and :func:`repro.sim.verify_pattern`
#: (historically the scattered ``tol=1e-6`` defaults).
CHECK_RTOL = 1e-6

#: Absolute floor (bytes) of the memory-feasibility slack.
MEMORY_ABS_TOL = 1.0


def memory_slack(capacity: float, rtol: float = CHECK_RTOL) -> float:
    """Allowed overshoot (bytes) when checking a peak against ``capacity``.

    Combined absolute + relative tolerance: ``max(MEMORY_ABS_TOL,
    rtol * capacity)``.  Feasibility check: ``peak > capacity +
    memory_slack(capacity, rtol)`` ⇒ violation.
    """
    return max(MEMORY_ABS_TOL, rtol * capacity)
