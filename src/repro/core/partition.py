"""Stages, partitionings and allocations (paper §3 terminology).

* A *stage* is a contiguous set of layers ``k..l``.
* A *partitioning* is an ordered list of stages covering the chain ``1..L``.
* An *allocation* assigns each stage to a processor.  It is *contiguous*
  when every processor holds at most one stage; MadPipe also produces
  allocations where one *special* processor holds several stages while all
  other (*normal*) processors hold exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .chain import Chain
from .platform import Platform

__all__ = ["Stage", "Partitioning", "Allocation"]


@dataclass(frozen=True, order=True)
class Stage:
    """Contiguous layer range ``start..end`` (1-based, inclusive)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.end < self.start:
            raise ValueError(f"invalid stage [{self.start}, {self.end}]")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def compute(self, chain: Chain) -> float:
        """``U(s)`` — total forward+backward cost of the stage."""
        return chain.U(self.start, self.end)

    def forward(self, chain: Chain) -> float:
        return chain.U_f(self.start, self.end)

    def backward(self, chain: Chain) -> float:
        return chain.U_b(self.start, self.end)

    def stored_activations(self, chain: Chain) -> float:
        """``ā_s = Σ_{i∈s} a_{i-1}`` (paper §4.3)."""
        return chain.stored_activations(self.start, self.end)

    def grad_buffer(self, chain: Chain) -> float:
        """``ĝ_s = a_end`` — the grad-input buffer a split backward holds
        from its B start until its W completes (the gradient w.r.t. the
        stage's output activation, same size as the boundary activation).
        """
        return chain.activation(self.end)


@dataclass(frozen=True)
class Partitioning:
    """An ordered cover of the chain by contiguous stages."""

    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("empty partitioning")
        if self.stages[0].start != 1:
            raise ValueError("first stage must start at layer 1")
        for a, b in zip(self.stages, self.stages[1:]):
            if b.start != a.end + 1:
                raise ValueError(f"gap/overlap between {a} and {b}")

    @classmethod
    def from_cuts(cls, L: int, cuts: list[int] | tuple[int, ...]) -> "Partitioning":
        """Build from the sorted list of last-layers of each stage except
        the final one (e.g. ``L=10, cuts=[3, 7]`` → stages 1-3, 4-7, 8-10).
        """
        bounds = [0, *cuts, L]
        if sorted(set(bounds)) != bounds:
            raise ValueError(f"cuts must be strictly increasing within 1..{L - 1}")
        return cls(tuple(Stage(a + 1, b) for a, b in zip(bounds, bounds[1:])))

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def L(self) -> int:
        return self.stages[-1].end

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def __getitem__(self, i: int) -> Stage:
        return self.stages[i]

    def cut_layers(self) -> list[int]:
        """Layers ``l`` whose boundary ``(l, l+1)`` separates two stages."""
        return [s.end for s in self.stages[:-1]]

    def validate_cover(self, chain: Chain) -> None:
        """Raise if the partitioning does not exactly cover ``chain``."""
        if self.L != chain.L:
            raise ValueError(
                f"partitioning covers 1..{self.L} but chain has L={chain.L}"
            )


@dataclass(frozen=True)
class Allocation:
    """A partitioning plus a stage → processor assignment.

    ``procs[i]`` is the 0-based processor index executing ``stages[i]``.
    """

    partitioning: Partitioning
    procs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.procs) != self.partitioning.n_stages:
            raise ValueError("one processor per stage required")
        if any(p < 0 for p in self.procs):
            raise ValueError("processor indices must be non-negative")

    # -- structure ----------------------------------------------------------

    @property
    def stages(self) -> tuple[Stage, ...]:
        return self.partitioning.stages

    @property
    def n_stages(self) -> int:
        return self.partitioning.n_stages

    def procs_used(self) -> set[int]:
        return set(self.procs)

    def stages_on_proc(self, p: int) -> list[int]:
        """Indices (into ``stages``) of the stages held by processor ``p``."""
        return [i for i, q in enumerate(self.procs) if q == p]

    def is_contiguous(self) -> bool:
        """True iff every processor holds at most one stage."""
        return len(self.procs_used()) == len(self.procs)

    def special_procs(self) -> list[int]:
        """Processors holding more than one stage."""
        seen: dict[int, int] = {}
        for p in self.procs:
            seen[p] = seen.get(p, 0) + 1
        return sorted(p for p, n in seen.items() if n > 1)

    # -- loads ---------------------------------------------------------------

    def proc_loads(self, chain: Chain) -> dict[int, float]:
        """Total compute load per processor."""
        loads: dict[int, float] = {}
        for stage, p in zip(self.stages, self.procs):
            loads[p] = loads.get(p, 0.0) + stage.compute(chain)
        return loads

    def link_loads(self, chain: Chain, bandwidth: float) -> dict[tuple[int, int], float]:
        """Total communication load per (unordered) processor pair link."""
        loads: dict[tuple[int, int], float] = {}
        for (s, p), (_, q) in zip(
            zip(self.stages, self.procs), zip(self.stages[1:], self.procs[1:])
        ):
            if p != q:
                key = (min(p, q), max(p, q))
                loads[key] = loads.get(key, 0.0) + chain.comm_time(s.end, bandwidth)
        return loads

    def period_lower_bound(self, chain: Chain, platform: Platform) -> float:
        """Paper's *period of an allocation*: the load of the most loaded
        resource (GPU or link), ignoring memory constraints."""
        loads = list(self.proc_loads(chain).values())
        loads.extend(self.link_loads(chain, platform.bandwidth).values())
        return max(loads)

    def validate(self, chain: Chain, platform: Platform) -> None:
        """Raise if the allocation is structurally invalid for the inputs."""
        self.partitioning.validate_cover(chain)
        if any(p >= platform.n_procs for p in self.procs):
            raise ValueError("processor index beyond platform size")

    @classmethod
    def contiguous(cls, partitioning: Partitioning) -> "Allocation":
        """Assign stage ``i`` to processor ``i`` (the PipeDream layout)."""
        return cls(partitioning, tuple(range(partitioning.n_stages)))
