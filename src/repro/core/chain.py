"""Linearized DNN chain model (paper §3).

A :class:`Chain` describes a linear (or linearized) network of ``L`` layers,
numbered ``1..L`` as in the paper.  Each layer ``l`` carries:

* ``u_F[l]`` / ``u_B[l]`` — durations (seconds) of the forward / backward
  task on a mini-batch of size ``B``;
* ``W[l]`` — parameter weight size (bytes);
* ``a[l]`` — size (bytes) of the activation tensor produced by ``F_l``.
  ``a[0]`` is the size of the network input.  The gradient ``b^{(l)}``
  consumed by ``B_l`` has the same size as ``a^{(l)}``.

All range quantities used by the algorithms (``U(k,l)``, stored-activation
sums, weight sums) are served in O(1) from prefix sums.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LayerProfile", "Chain"]


@dataclass(frozen=True)
class LayerProfile:
    """Profile of a single chain layer.

    Attributes mirror the paper's notation: ``u_f``/``u_b`` are the forward
    and backward durations in seconds, ``weights`` the parameter bytes
    (one copy — the training-time factor of 3 is applied by the memory
    model, not here), ``activation`` the bytes of the output tensor
    ``a^{(l)}`` for the profiled mini-batch size.
    """

    name: str
    u_f: float
    u_b: float
    weights: float
    activation: float

    def __post_init__(self) -> None:
        for attr in ("u_f", "u_b", "weights", "activation"):
            v = getattr(self, attr)
            try:
                finite = math.isfinite(v)
            except TypeError:
                raise ValueError(
                    f"layer {self.name!r}: {attr} must be a number, got {v!r}"
                ) from None
            if not finite:
                raise ValueError(f"layer {self.name!r}: non-finite {attr} ({v!r})")
        if self.u_f < 0 or self.u_b < 0:
            raise ValueError(f"layer {self.name!r}: negative duration")
        if self.weights < 0 or self.activation < 0:
            raise ValueError(f"layer {self.name!r}: negative size")


@dataclass
class Chain:
    """A chain of ``L`` layers plus the input activation size ``a[0]``.

    Layers are addressed with the paper's 1-based indices throughout the
    public API.
    """

    layers: list[LayerProfile]
    input_activation: float
    name: str = "chain"

    # prefix sums, filled in __post_init__ (index 0 == empty prefix)
    _cum_u: np.ndarray = field(init=False, repr=False)
    _cum_uf: np.ndarray = field(init=False, repr=False)
    _cum_ub: np.ndarray = field(init=False, repr=False)
    _cum_w: np.ndarray = field(init=False, repr=False)
    _cum_a_in: np.ndarray = field(init=False, repr=False)
    _act: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a chain needs at least one layer")
        try:
            finite = math.isfinite(self.input_activation)
        except TypeError:
            raise ValueError(
                f"input activation size must be a number, "
                f"got {self.input_activation!r}"
            ) from None
        if not finite:
            raise ValueError(
                f"input activation size must be finite, got {self.input_activation!r}"
            )
        if self.input_activation < 0:
            raise ValueError("negative input activation size")
        u_f = np.array([l.u_f for l in self.layers], dtype=float)
        u_b = np.array([l.u_b for l in self.layers], dtype=float)
        w = np.array([l.weights for l in self.layers], dtype=float)
        # _act[l] == a^{(l)} for l in 0..L
        self._act = np.concatenate(
            ([self.input_activation], [l.activation for l in self.layers])
        ).astype(float)
        zero = np.zeros(1)
        self._cum_uf = np.concatenate((zero, np.cumsum(u_f)))
        self._cum_ub = np.concatenate((zero, np.cumsum(u_b)))
        self._cum_u = self._cum_uf + self._cum_ub
        self._cum_w = np.concatenate((zero, np.cumsum(w)))
        # stored ("input") activation of layer i is a^{(i-1)}; prefix over that
        self._cum_a_in = np.concatenate((zero, np.cumsum(self._act[:-1])))

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def L(self) -> int:
        """Number of layers."""
        return len(self.layers)

    def layer(self, l: int) -> LayerProfile:
        """Return the profile of layer ``l`` (1-based)."""
        self._check_layer(l)
        return self.layers[l - 1]

    def u_f(self, l: int) -> float:
        """Forward duration of layer ``l``."""
        self._check_layer(l)
        return float(self._cum_uf[l] - self._cum_uf[l - 1])

    def u_b(self, l: int) -> float:
        """Backward duration of layer ``l``."""
        self._check_layer(l)
        return float(self._cum_ub[l] - self._cum_ub[l - 1])

    def weight(self, l: int) -> float:
        """Parameter bytes of layer ``l`` (single copy)."""
        self._check_layer(l)
        return float(self._cum_w[l] - self._cum_w[l - 1])

    def activation(self, l: int) -> float:
        """Size of ``a^{(l)}`` for ``l`` in ``0..L`` (``a[0]`` = input)."""
        if not 0 <= l <= self.L:
            raise IndexError(f"activation index {l} out of range 0..{self.L}")
        return float(self._act[l])

    # -- range queries (paper notation) ------------------------------------

    def U(self, k: int, l: int) -> float:
        """Total compute cost ``Σ_{i=k}^{l} u_F_i + u_B_i`` (paper §4.2).

        Returns 0 for the empty range ``k > l``.
        """
        if k > l:
            return 0.0
        self._check_layer(k)
        self._check_layer(l)
        return float(self._cum_u[l] - self._cum_u[k - 1])

    def U_f(self, k: int, l: int) -> float:
        """Forward-only cost of layers ``k..l``."""
        if k > l:
            return 0.0
        self._check_layer(k)
        self._check_layer(l)
        return float(self._cum_uf[l] - self._cum_uf[k - 1])

    def U_b(self, k: int, l: int) -> float:
        """Backward-only cost of layers ``k..l``."""
        if k > l:
            return 0.0
        self._check_layer(k)
        self._check_layer(l)
        return float(self._cum_ub[l] - self._cum_ub[k - 1])

    def weights(self, k: int, l: int) -> float:
        """Parameter bytes of layers ``k..l`` (single copy)."""
        if k > l:
            return 0.0
        self._check_layer(k)
        self._check_layer(l)
        return float(self._cum_w[l] - self._cum_w[k - 1])

    def stored_activations(self, k: int, l: int) -> float:
        """``ā = Σ_{i=k}^{l} a_{i-1}`` — bytes one active batch keeps for
        the backward pass of layers ``k..l`` (paper §4.3)."""
        if k > l:
            return 0.0
        self._check_layer(k)
        self._check_layer(l)
        return float(self._cum_a_in[l] - self._cum_a_in[k - 1])

    # -- vectorized range queries (NumPy fast paths) ------------------------
    #
    # These serve whole arrays of (start, end) ranges in one shot from the
    # cached prefix sums, with the *same* float arithmetic as the scalar
    # accessors (``cum[l] - cum[k-1]`` per range), so kernels built on them
    # are bit-identical to loops over ``U_f``/``U_b``/``weights``/…

    def u_f_ranges(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`U_f`: forward cost of layers ``starts[i]..ends[i]``."""
        return self._cum_uf[ends] - self._cum_uf[starts - 1]

    def u_b_ranges(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`U_b`: backward cost of layers ``starts[i]..ends[i]``."""
        return self._cum_ub[ends] - self._cum_ub[starts - 1]

    def weight_ranges(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`weights` (single copy) over layer ranges."""
        return self._cum_w[ends] - self._cum_w[starts - 1]

    def stored_activation_ranges(
        self, starts: np.ndarray, ends: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`stored_activations` (``ā``) over layer ranges."""
        return self._cum_a_in[ends] - self._cum_a_in[starts - 1]

    def activation_values(self, ls: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activation`: ``a^{(l)}`` for each ``l`` in ``0..L``."""
        return self._act[ls]

    def comm_time(self, l: int, bandwidth: float) -> float:
        """``C(l) = 2·a_l / β`` — the total link time of the boundary after
        layer ``l`` (activation forward + gradient backward), for ``l`` in
        ``0..L``.  ``C(0)`` and ``C(L)`` denote the (non-existent) chain
        boundaries and are 0.
        """
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if l <= 0 or l >= self.L:
            return 0.0
        return 2.0 * float(self._act[l]) / bandwidth

    def total_compute(self) -> float:
        """``U(1, L)`` — the sequential execution time of one mini-batch."""
        return self.U(1, self.L)

    def total_comm(self, bandwidth: float) -> float:
        """``Σ_{l=1}^{L-1} C(l)`` — total link time if every boundary cut."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return float(2.0 * self._act[1 : self.L].sum() / bandwidth)

    # -- helpers ------------------------------------------------------------

    def _check_layer(self, l: int) -> None:
        if not 1 <= l <= self.L:
            raise IndexError(f"layer index {l} out of range 1..{self.L}")

    def subchain(self, k: int, l: int, name: str | None = None) -> "Chain":
        """Chain consisting of layers ``k..l``; input activation ``a[k-1]``."""
        self._check_layer(k)
        self._check_layer(l)
        if k > l:
            raise ValueError("empty subchain")
        return Chain(
            layers=self.layers[k - 1 : l],
            input_activation=float(self._act[k - 1]),
            name=name or f"{self.name}[{k}:{l}]",
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (see ``repro.profiling.io``)."""
        return {
            "name": self.name,
            "input_activation": self.input_activation,
            "layers": [
                {
                    "name": l.name,
                    "u_f": l.u_f,
                    "u_b": l.u_b,
                    "weights": l.weights,
                    "activation": l.activation,
                }
                for l in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Chain":
        """Inverse of :meth:`to_dict`."""
        return cls(
            layers=[LayerProfile(**l) for l in data["layers"]],
            input_activation=data["input_activation"],
            name=data.get("name", "chain"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Chain({self.name!r}, L={self.L}, "
            f"U={self.total_compute():.4f}s, "
            f"weights={self.weights(1, self.L) / 2**20:.1f}MiB)"
        )
