"""Core data structures: chains, platforms, partitionings, patterns, memory."""

from .chain import Chain, LayerProfile
from .memory import MemoryBreakdown, stage_memory, stage_memory_breakdown
from .partition import Allocation, Partitioning, Stage
from .pattern import Op, PatternError, PeriodicPattern, gpu, link
from .platform import GB, GBPS, Platform
from .serialize import (
    allocation_from_dict,
    allocation_to_dict,
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    save_pattern,
)

__all__ = [
    "Chain",
    "LayerProfile",
    "MemoryBreakdown",
    "stage_memory",
    "stage_memory_breakdown",
    "Allocation",
    "Partitioning",
    "Stage",
    "Op",
    "PatternError",
    "PeriodicPattern",
    "gpu",
    "link",
    "GB",
    "GBPS",
    "Platform",
    "allocation_from_dict",
    "allocation_to_dict",
    "load_pattern",
    "pattern_from_dict",
    "pattern_to_dict",
    "save_pattern",
]
