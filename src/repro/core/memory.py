"""GPU memory model (paper §3 and §4.2.1).

A stage made of layers ``k..l`` held on a GPU that keeps ``g`` active
batches occupies

``M(k, l, g) = Σ_{i=k}^{l} (3·W_i + g·a_{i-1}) + 2·(a_{k-1} + a_l)``

* ``3·W_i`` — two versions of the parameters plus one accumulated gradient
  (the 2BW scheme of PipeDream-2BW adopted by the paper);
* ``g·a_{i-1}`` — ``g`` copies of each stored input activation;
* ``2·(a_{k-1} + a_l)`` — send/receive communication buffers at the stage
  boundaries (dropped when ``k = 1`` / ``l = L``, where no communication
  takes place).
"""

from __future__ import annotations

from dataclasses import dataclass

from .chain import Chain

__all__ = [
    "MemoryBreakdown",
    "effective_capacity",
    "stage_memory",
    "stage_memory_breakdown",
]


def effective_capacity(memory: float, headroom: float = 0.0) -> float:
    """Capacity (bytes) left for *planning* after reserving a safety margin.

    ``headroom`` is the fraction of each GPU reserved for profile drift,
    fragmentation and allocator overhead: the planners (DP, MILP skeleton,
    1F1B*) fit their schedules into ``memory * (1 - headroom)`` while
    certification still measures margins against the full capacity.
    ``headroom = 0`` returns ``memory`` unchanged (bit-identical default).
    """
    if not 0.0 <= headroom < 1.0:
        raise ValueError(f"memory_headroom must be in [0, 1), got {headroom!r}")
    if headroom == 0.0:
        return memory
    return memory * (1.0 - headroom)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-component memory usage of a stage, in bytes.

    ``grad_buffers`` is the split-backward grad-input term (zero for the
    classic monolithic-backward model, keeping totals bit-identical).
    """

    weights: float
    activations: float
    buffers: float
    grad_buffers: float = 0.0

    @property
    def total(self) -> float:
        if self.grad_buffers:
            return self.weights + self.activations + self.buffers + self.grad_buffers
        return self.weights + self.activations + self.buffers


def stage_memory_breakdown(
    chain: Chain,
    k: int,
    l: int,
    g: int,
    *,
    in_buffer: bool | None = None,
    out_buffer: bool | None = None,
    g_grad: int = 0,
) -> MemoryBreakdown:
    """Memory breakdown of stage ``k..l`` keeping ``g`` active batches.

    ``in_buffer`` / ``out_buffer`` control whether the communication buffers
    at the stage boundaries are counted.  By default they follow the paper's
    rule: present unless the boundary is the start (k = 1) or end (l = L)
    of the chain.  A non-contiguous allocation may override them (e.g. two
    stages of the special processor that are adjacent in the chain still
    exchange data through memory, but we keep the paper's conservative
    accounting and always charge buffers at internal boundaries).

    ``g_grad`` is the split-backward term: the number of grad-input
    buffers (each of size ``a_l``) held between a grad-input backward's
    start and its grad-weight op's completion.  The weight-gradient
    accumulator itself is already inside the ``3·W_i`` term, so splitting
    the backward adds only this boundary-sized buffer.
    """
    if k > l:
        raise ValueError("empty stage")
    if g < 0:
        raise ValueError("negative active batch count")
    if g_grad < 0:
        raise ValueError("negative grad-buffer count")
    if in_buffer is None:
        in_buffer = k > 1
    if out_buffer is None:
        out_buffer = l < chain.L
    weights = 3.0 * chain.weights(k, l)
    activations = g * chain.stored_activations(k, l)
    buffers = 0.0
    if in_buffer:
        buffers += 2.0 * chain.activation(k - 1)
    if out_buffer:
        buffers += 2.0 * chain.activation(l)
    grad = g_grad * chain.activation(l) if g_grad else 0.0
    return MemoryBreakdown(
        weights=weights, activations=activations, buffers=buffers, grad_buffers=grad
    )


def stage_memory(
    chain: Chain,
    k: int,
    l: int,
    g: int,
    *,
    in_buffer: bool | None = None,
    out_buffer: bool | None = None,
    g_grad: int = 0,
) -> float:
    """Total ``M(k, l, g)`` in bytes (see :func:`stage_memory_breakdown`)."""
    return stage_memory_breakdown(
        chain, k, l, g, in_buffer=in_buffer, out_buffer=out_buffer, g_grad=g_grad
    ).total
