"""MadPipe reproduction — memory-aware pipelined model parallelism.

Public API tour (see also :mod:`repro.api`, the stable facade)::

    import repro

    graph = repro.resnet50(image_size=1000)
    repro.profile_model(graph, repro.V100, batch_size=8)
    chain = repro.linearize(graph)
    platform = repro.Platform.of(n_procs=4, memory_gb=8, bandwidth_gbps=12)

    result = repro.plan(chain, platform, algorithm="madpipe", trace=True)
    print(result.period, result.status)
    repro.verify_pattern(chain, platform, result.pattern)
    repro.obs.write_chrome_trace(result.trace, "plan.json")

Deprecated top-level names (``repro.madpipe``,
``repro.schedule_allocation``) still resolve — through a module
``__getattr__`` that emits one :class:`DeprecationWarning` per name per
process — but new code should go through :func:`repro.api.plan` or
import the algorithm modules directly.
"""

import warnings as _warnings

from . import api, obs
from .algorithms import (
    Discretization,
    MadPipeResult,
    PipeDreamResult,
    algorithm1,
    gpipe,
    hybrid,
    madpipe_dp,
    min_feasible_period,
    pipedream,
)
from .api import (
    CalibrationResult,
    Certificate,
    LayerNoiseModel,
    NoiseModel,
    PlanResult,
    ProfileError,
    RobustnessReport,
    SweepResult,
    SweepSpec,
    certify,
    ingest,
    plan,
    sweep,
)
from .core import (
    GB,
    GBPS,
    Allocation,
    Chain,
    LayerProfile,
    Partitioning,
    PatternError,
    PeriodicPattern,
    Platform,
    Stage,
    stage_memory,
)
from .models import (
    coarsen,
    densenet121,
    generate_traces,
    inception,
    linearize,
    random_chain,
    resnet50,
    resnet101,
    uniform_chain,
    vgg16,
)
from .profiling import V100, DeviceSpec, load_chain, profile_model, save_chain
from .sim import eager_1f1b, simulate, verify_pattern
from .viz import render_gantt

__version__ = "1.1.0"

#: Deprecated top-level re-exports and where they now live.
_DEPRECATED = {
    "madpipe": ("repro.algorithms.madpipe", "madpipe"),
    "schedule_allocation": ("repro.ilp.solver", "schedule_allocation"),
}
#: Names that have already warned this process (tests reset this).
_DEPRECATION_WARNED: set = set()


def __getattr__(name: str):
    """Resolve deprecated top-level names lazily, warning once per name.

    The resolved object is cached into the module namespace, so the
    second access never re-enters this hook (and never re-warns).
    """
    try:
        mod_name, attr = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name not in _DEPRECATION_WARNED:
        _DEPRECATION_WARNED.add(name)
        _warnings.warn(
            f"'repro.{name}' is deprecated; use repro.api.plan(...) or "
            f"import it from {mod_name}",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    value = getattr(importlib.import_module(mod_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "api",
    "obs",
    "plan",
    "sweep",
    "certify",
    "ingest",
    "CalibrationResult",
    "Certificate",
    "LayerNoiseModel",
    "NoiseModel",
    "PlanResult",
    "ProfileError",
    "RobustnessReport",
    "SweepResult",
    "SweepSpec",
    "Discretization",
    "MadPipeResult",
    "PipeDreamResult",
    "algorithm1",
    "gpipe",
    "hybrid",
    "madpipe",
    "madpipe_dp",
    "min_feasible_period",
    "pipedream",
    "GB",
    "GBPS",
    "Allocation",
    "Chain",
    "LayerProfile",
    "Partitioning",
    "PatternError",
    "PeriodicPattern",
    "Platform",
    "Stage",
    "stage_memory",
    "schedule_allocation",
    "coarsen",
    "densenet121",
    "generate_traces",
    "inception",
    "linearize",
    "random_chain",
    "resnet50",
    "resnet101",
    "uniform_chain",
    "vgg16",
    "V100",
    "DeviceSpec",
    "load_chain",
    "profile_model",
    "save_chain",
    "eager_1f1b",
    "simulate",
    "verify_pattern",
    "render_gantt",
    "__version__",
]
