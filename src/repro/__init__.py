"""MadPipe reproduction — memory-aware pipelined model parallelism.

Public API tour::

    from repro import (
        Chain, Platform, madpipe, pipedream, min_feasible_period,
        resnet50, linearize, profile_model, V100, verify_pattern,
    )

    graph = resnet50(image_size=1000)
    profile_model(graph, V100, batch_size=8)
    chain = linearize(graph)
    platform = Platform.of(n_procs=4, memory_gb=8, bandwidth_gbps=12)

    result = madpipe(chain, platform)
    print(result.period, result.allocation)
    verify_pattern(chain, platform, result.pattern)
"""

from .algorithms import (
    Discretization,
    MadPipeResult,
    PipeDreamResult,
    algorithm1,
    gpipe,
    hybrid,
    madpipe,
    madpipe_dp,
    min_feasible_period,
    pipedream,
)
from .core import (
    GB,
    GBPS,
    Allocation,
    Chain,
    LayerProfile,
    Partitioning,
    PatternError,
    PeriodicPattern,
    Platform,
    Stage,
    stage_memory,
)
from .ilp import schedule_allocation
from .models import (
    coarsen,
    densenet121,
    inception,
    linearize,
    random_chain,
    resnet50,
    resnet101,
    uniform_chain,
    vgg16,
)
from .profiling import V100, DeviceSpec, load_chain, profile_model, save_chain
from .sim import eager_1f1b, simulate, verify_pattern
from .viz import render_gantt

__version__ = "1.0.0"

__all__ = [
    "Discretization",
    "MadPipeResult",
    "PipeDreamResult",
    "algorithm1",
    "gpipe",
    "hybrid",
    "madpipe",
    "madpipe_dp",
    "min_feasible_period",
    "pipedream",
    "GB",
    "GBPS",
    "Allocation",
    "Chain",
    "LayerProfile",
    "Partitioning",
    "PatternError",
    "PeriodicPattern",
    "Platform",
    "Stage",
    "stage_memory",
    "schedule_allocation",
    "coarsen",
    "densenet121",
    "inception",
    "linearize",
    "random_chain",
    "resnet50",
    "resnet101",
    "uniform_chain",
    "vgg16",
    "V100",
    "DeviceSpec",
    "load_chain",
    "profile_model",
    "save_chain",
    "eager_1f1b",
    "simulate",
    "verify_pattern",
    "render_gantt",
    "__version__",
]
