"""Discrete-event execution of periodic patterns.

The simulator unrolls a pattern over ``K`` periods and *executes* it: every
operation instance gets an absolute start time and a batch index, and the
engine independently re-checks what the schedule promises — dependencies
between instances, exclusive resource use, and the per-GPU memory
occupancy over time (weights + communication buffers + one stored
activation set per active batch).

This is deliberately redundant with the analytic checks in
:class:`repro.core.pattern.PeriodicPattern`: the algorithms are validated
by running their output, not only by re-deriving it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.chain import Chain
from ..core.memory import stage_memory_breakdown
from ..core.pattern import PeriodicPattern
from ..core.platform import Platform
from ..core.tolerances import CHECK_RTOL, memory_slack

__all__ = ["Execution", "SimReport", "simulate"]


@dataclass(frozen=True)
class Execution:
    """One executed operation instance."""

    kind: str
    index: int
    batch: int
    start: float
    end: float
    resource: tuple


@dataclass
class SimReport:
    """Outcome of a pattern simulation."""

    horizon: float
    executions: list[Execution]
    peak_memory: dict[int, float]
    memory_timeline: dict[int, list[tuple[float, float]]]
    completed_batches: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    steady_completions: int = 0

    @property
    def throughput(self) -> float:
        """Completed mini-batches per second over the whole horizon
        (includes pipeline warm-up; see :attr:`steady_throughput`)."""
        return self.completed_batches / self.horizon if self.horizon > 0 else 0.0

    @property
    def steady_throughput(self) -> float:
        """Mini-batches per second over the second half of the horizon,
        where the pipeline is full (converges to ``1/T``)."""
        half = self.horizon / 2
        return self.steady_completions / half if half > 0 else 0.0


def simulate(
    chain: Chain,
    platform: Platform,
    pattern: PeriodicPattern,
    *,
    periods: int = 10,
    tol: float = CHECK_RTOL,
) -> SimReport:
    """Unroll and execute ``pattern`` for ``periods`` periods.

    Batch indices below 0 (the warm-up prefix of the infinite schedule)
    are skipped; dependency checks apply whenever both endpoints fall in
    the simulated window.
    """
    T = pattern.period
    alloc = pattern.allocation
    horizon = periods * T

    executions: list[Execution] = []
    by_key_batch: dict[tuple[str, int, int], Execution] = {}
    for k in range(periods):
        for op in pattern.ops.values():
            batch = k - op.shift
            if batch < 0:
                continue
            e = Execution(
                kind=op.kind,
                index=op.index,
                batch=batch,
                start=k * T + op.start,
                end=k * T + op.start + op.duration,
                resource=op.resource,
            )
            executions.append(e)
            by_key_batch[(op.kind, op.index, batch)] = e
    executions.sort(key=lambda e: (e.start, e.end))

    violations: list[str] = []

    # resource exclusivity
    by_resource: dict[tuple, list[Execution]] = {}
    for e in executions:
        by_resource.setdefault(e.resource, []).append(e)
    for resource, execs in by_resource.items():
        execs.sort(key=lambda e: e.start)
        for a, b in zip(execs, execs[1:]):
            if b.start < a.end - tol:
                violations.append(
                    f"resource {resource}: {a.kind}{a.index}[b{a.batch}] "
                    f"overlaps {b.kind}{b.index}[b{b.batch}]"
                )

    # dependencies (same mini-batch), via the pattern's edge structure
    for (uk, ui), (vk, vi) in pattern.dependency_edges():
        u_shift = pattern.ops[(uk, ui)].shift
        v_shift = pattern.ops[(vk, vi)].shift
        for k in range(periods):
            batch = k - v_shift
            if batch < 0:
                continue
            v = by_key_batch.get((vk, vi, batch))
            u = by_key_batch.get((uk, ui, batch))
            if v is None:
                continue
            if u is None:
                # producer instance lies outside the window (late periods)
                if batch + u_shift < periods:
                    violations.append(
                        f"missing producer {uk}{ui}[b{batch}] for {vk}{vi}[b{batch}]"
                    )
                continue
            if v.start < u.end - tol:
                violations.append(
                    f"dependency {uk}{ui}->{vk}{vi} broken for batch {batch}: "
                    f"{v.start:.6f} < {u.end:.6f}"
                )

    w_stages = frozenset(i for (kind, i) in pattern.ops if kind == "W")
    peak, timeline = _memory_trace(
        chain, alloc, executions, horizon, tol, w_stages=w_stages
    )
    cap = platform.memory + memory_slack(platform.memory, tol)
    for p, m in peak.items():
        if m > cap:
            violations.append(
                f"GPU {p} peak memory {m / 2**30:.3f} GiB exceeds "
                f"{platform.memory / 2**30:.3f} GiB"
            )

    finish_times = [
        e.end for e in executions if e.kind == "B" and e.index == 0 and e.end <= horizon
    ]
    return SimReport(
        horizon=horizon,
        executions=executions,
        peak_memory=peak,
        memory_timeline=timeline,
        completed_batches=len(finish_times),
        violations=violations,
        steady_completions=sum(1 for t in finish_times if t > horizon / 2),
    )


def _memory_trace(
    chain: Chain,
    alloc,
    executions: list[Execution],
    horizon: float,
    tol: float = CHECK_RTOL,
    *,
    w_stages: frozenset[int] = frozenset(),
) -> tuple[dict[int, float], dict[int, list[tuple[float, float]]]]:
    """Per-GPU memory as a step function: static (weights + buffers) plus
    one stored-activation set per batch between its forward start and its
    backward end.

    Stages in ``w_stages`` use the split-backward model: the stored
    activations stay live until the grad-weight op completes (``W`` needs
    them too), and a grad-input buffer of the boundary activation size is
    held from ``B`` start to ``W`` end.

    The finite window under-counts the steady state near ``t = 0`` (the
    infinite schedule's past is missing), so peaks are representative of
    the *late* part of the window — callers should simulate enough
    periods for the pipeline to fill.
    """
    static: dict[int, float] = {}
    for p in alloc.procs_used():
        s_total = 0.0
        for i in alloc.stages_on_proc(p):
            s = alloc.stages[i]
            bd = stage_memory_breakdown(chain, s.start, s.end, 0)
            s_total += bd.weights + bd.buffers
        static[p] = s_total

    events: dict[int, list[tuple[float, float]]] = {p: [] for p in static}
    for e in executions:
        if e.kind not in ("F", "B", "W"):
            continue
        p = alloc.procs[e.index]
        abar = alloc.stages[e.index].stored_activations(chain)
        if e.kind == "F":
            events[p].append((e.start, abar))
        elif e.kind == "B":
            if e.index in w_stages:
                # split backward: B allocates the grad-input buffer; the
                # stored activations survive until W completes
                events[p].append((e.start, alloc.stages[e.index].grad_buffer(chain)))
            else:
                events[p].append((e.end, -abar))
        else:  # W: frees the activations and the grad-input buffer
            events[p].append((e.end, -abar))
            events[p].append((e.end, -alloc.stages[e.index].grad_buffer(chain)))

    # Two events closer than the tolerance are simultaneous; frees apply
    # before allocations (a backward that ends exactly when the next
    # forward starts releases its activation first — the convention the
    # schedule semantics and the ILP memory constraints use).
    snap = max(tol * max(horizon, 1.0), 1e-12)
    peak: dict[int, float] = {}
    timeline: dict[int, list[tuple[float, float]]] = {}
    for p, evs in events.items():
        evs.sort(key=lambda td: (round(td[0] / snap), td[1]))
        level = static[p]
        best = level
        steps = [(0.0, level)]
        for t, delta in evs:
            if t > horizon:
                break
            level += delta
            steps.append((t, level))
            best = max(best, level)
        peak[p] = best
        timeline[p] = steps
    return peak, timeline
