"""Eager 1F1B execution (PipeDream's scheduling strategy, §4.1 ¶1).

PipeDream fixes a pipeline depth ``d`` (number of mini-batches in flight)
and starts every operation as soon as its inputs are available, giving
backwards priority over forwards on each GPU (the "1F1B" discipline).
This event-driven simulator executes that policy on any contiguous
allocation, measuring the achieved steady-state period and the actual
peak memory — the quantities the paper contrasts with the *optimal*
periodic 1F1B\\* pattern.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.chain import Chain
from ..core.memory import stage_memory_breakdown
from ..core.partition import Allocation
from ..core.pattern import gpu, link
from ..core.platform import Platform

__all__ = ["EagerReport", "eager_1f1b"]


@dataclass
class EagerReport:
    """Result of an eager 1F1B run."""

    n_batches: int
    depth: int
    makespan: float
    steady_period: float
    peak_memory: dict[int, float]
    executions: list[tuple[str, int, int, float, float]]  # kind, stage, batch, start, end


def eager_1f1b(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    n_batches: int = 32,
    depth: int | None = None,
) -> EagerReport:
    """Run eager 1F1B on a contiguous allocation for ``n_batches``.

    ``depth`` limits the number of batches in flight (default: the number
    of stages, PipeDream's choice).  The steady-state period is measured
    between consecutive completions in the second half of the run.
    """
    if not allocation.is_contiguous():
        raise ValueError("eager 1F1B requires a contiguous allocation")
    n = allocation.n_stages
    if depth is None:
        depth = n
    if depth < 1:
        raise ValueError("depth must be >= 1")
    stages, procs = allocation.stages, allocation.procs

    durations: dict[tuple[str, int], float] = {}
    resources: dict[tuple[str, int], tuple] = {}
    for i, s in enumerate(stages):
        durations[("F", i)] = s.forward(chain)
        durations[("B", i)] = s.backward(chain)
        resources[("F", i)] = resources[("B", i)] = gpu(procs[i])
        if i < n - 1 and procs[i] != procs[i + 1]:
            half = chain.activation(s.end) / platform.bandwidth
            durations[("CF", i)] = durations[("CB", i)] = half
            resources[("CF", i)] = resources[("CB", i)] = link(procs[i], procs[i + 1])

    def preds(kind: str, i: int) -> list[tuple[str, int]]:
        if kind == "F":
            if i == 0:
                return []
            return [("CF", i - 1)] if ("CF", i - 1) in durations else [("F", i - 1)]
        if kind == "CF":
            return [("F", i)]
        if kind == "B":
            own = [("F", i)]
            if i == n - 1:
                return own
            nxt = [("CB", i)] if ("CB", i) in durations else [("B", i + 1)]
            return own + nxt
        return [("B", i + 1)]  # CB

    done: dict[tuple[str, int, int], float] = {}  # (kind, stage, batch) -> end time
    free_at: dict[tuple, float] = {r: 0.0 for r in set(resources.values())}
    injected = 0
    completed = 0
    completion_times: list[float] = []
    executions: list[tuple[str, int, int, float, float]] = []

    # ready ops priority: (earliest possible start, B-before-F, batch)
    ready: list[tuple[float, int, int, str, int]] = []

    def push(kind: str, i: int, batch: int) -> None:
        t = max((done[(k, j, batch)] for (k, j) in preds(kind, i)), default=0.0)
        prio = 0 if kind in ("B", "CB") else 1
        heapq.heappush(ready, (t, prio, batch, kind, i))

    def succs(kind: str, i: int) -> list[tuple[str, int]]:
        out = []
        if kind == "F":
            if i < n - 1:
                out.append(("CF", i) if ("CF", i) in durations else ("F", i + 1))
            if i == n - 1:
                out.append(("B", i))
            else:
                out.append(("B", i))  # F_i is also a prerequisite of B_i
        elif kind == "CF":
            out.append(("F", i + 1))
        elif kind == "B":
            if i > 0:
                out.append(("CB", i - 1) if ("CB", i - 1) in durations else ("B", i - 1))
        else:  # CB
            out.append(("B", i))
        return out

    scheduled: set[tuple[str, int, int]] = set()

    def try_push(kind: str, i: int, batch: int) -> None:
        key = (kind, i, batch)
        if key in scheduled:
            return
        if all((k, j, batch) in done for (k, j) in preds(kind, i)):
            scheduled.add(key)
            push(kind, i, batch)

    for b in range(min(depth, n_batches)):
        injected += 1
        scheduled.add(("F", 0, b))
        push("F", 0, b)

    while ready:
        t_ready, _prio, batch, kind, i = heapq.heappop(ready)
        r = resources[(kind, i)]
        start = max(t_ready, free_at[r])
        end = start + durations[(kind, i)]
        # another ready op on this resource might start earlier: re-queue if
        # something strictly better exists (simple non-preemptive policy:
        # accept; the heap order already prefers earlier-ready backwards)
        free_at[r] = end
        done[(kind, i, batch)] = end
        executions.append((kind, i, batch, start, end))
        for sk, sj in succs(kind, i):
            try_push(sk, sj, batch)
        if kind == "B" and i == 0:
            completed += 1
            completion_times.append(end)
            if injected < n_batches:
                nb = injected
                injected += 1
                scheduled.add(("F", 0, nb))
                push("F", 0, nb)

    makespan = max(e for (_, _, _, _, e) in executions)
    # steady-state period from the second half of completions
    half = completion_times[len(completion_times) // 2 :]
    steady = (
        (half[-1] - half[0]) / (len(half) - 1) if len(half) > 1 else makespan
    )

    peak = _peak_memory(chain, allocation, executions)
    return EagerReport(
        n_batches=n_batches,
        depth=depth,
        makespan=makespan,
        steady_period=steady,
        peak_memory=peak,
        executions=executions,
    )


def _peak_memory(
    chain: Chain, allocation: Allocation, executions
) -> dict[int, float]:
    events: dict[int, list[tuple[float, float]]] = {}
    static: dict[int, float] = {}
    for i, s in enumerate(allocation.stages):
        p = allocation.procs[i]
        bd = stage_memory_breakdown(chain, s.start, s.end, 0)
        static[p] = static.get(p, 0.0) + bd.weights + bd.buffers
        events.setdefault(p, [])
    for kind, i, _batch, start, end in executions:
        if kind not in ("F", "B"):
            continue
        p = allocation.procs[i]
        abar = allocation.stages[i].stored_activations(chain)
        if kind == "F":
            events[p].append((start, abar))
        else:
            events[p].append((end, -abar))
    peak = {}
    for p, evs in events.items():
        evs.sort()
        level = static[p]
        best = level
        for _t, d in evs:
            level += d
            best = max(best, level)
        peak[p] = best
    return peak
