"""One-stop verification of a periodic pattern.

Combines the analytic checks (dependencies, resource exclusivity, memory
peaks in steady state) with an actual discrete-event execution of the
pattern, and cross-checks the two memory accounts against each other.
"""

from __future__ import annotations

from ..core.chain import Chain
from ..core.pattern import PatternError, PeriodicPattern
from ..core.platform import Platform
from ..core.tolerances import CHECK_RTOL, MEMORY_ABS_TOL
from .engine import SimReport, simulate

__all__ = ["verify_pattern"]


def verify_pattern(
    chain: Chain,
    platform: Platform,
    pattern: PeriodicPattern,
    *,
    periods: int | None = None,
    tol: float = CHECK_RTOL,
) -> SimReport:
    """Validate ``pattern`` analytically and by execution.

    Raises :class:`PatternError` on any violation; returns the simulation
    report on success.  ``periods`` defaults to enough periods for the
    pipeline to fill plus a steady-state window.
    """
    pattern.validate(chain, platform, tol=tol)
    pattern.check_memory(chain, platform, tol=tol)

    if periods is None:
        max_shift = max(op.shift for op in pattern.ops.values())
        periods = max_shift + 5
    report = simulate(chain, platform, pattern, periods=periods, tol=tol)
    if not report.ok:
        raise PatternError(
            "simulation violations:\n  " + "\n  ".join(report.violations[:10])
        )

    # cross-check: executed peaks must match the analytic steady state
    analytic = pattern.memory_peaks(chain)
    for p, m_exec in report.peak_memory.items():
        if m_exec > analytic[p] * (1 + tol) + MEMORY_ABS_TOL:
            raise PatternError(
                f"GPU {p}: executed peak {m_exec:.6g} exceeds analytic "
                f"steady state {analytic[p]:.6g}"
            )
    return report
