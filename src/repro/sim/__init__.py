"""Discrete-event simulation: pattern execution, eager 1F1B, validation."""

from .eager import EagerReport, eager_1f1b
from .engine import Execution, SimReport, simulate
from .validator import verify_pattern

__all__ = [
    "EagerReport",
    "eager_1f1b",
    "Execution",
    "SimReport",
    "simulate",
    "verify_pattern",
]
