"""ASCII Gantt rendering of periodic patterns (the shape of Figs. 2/3/5).

One line per resource; each operation is drawn over one period with its
index shift in brackets, e.g. ``F2[0]`` / ``B2[1]``.  Wrapping operations
are split at the period boundary.  Fill glyphs come from the op-kind
registry (:data:`repro.core.pattern.OP_KINDS`), so new kinds — e.g. the
zero-bubble grad-weight ``W`` ops — render without touching this module.
"""

from __future__ import annotations

from ..core.pattern import OP_KINDS, PeriodicPattern

__all__ = ["render_gantt"]


def _resource_label(resource: tuple) -> str:
    if resource[0] == "gpu":
        return f"GPU {resource[1]}"
    return f"link {resource[1]}-{resource[2]}"


def render_gantt(pattern: PeriodicPattern, *, width: int = 100) -> str:
    """Render one period of ``pattern`` as text, one row per resource."""
    T = pattern.period
    scale = width / T

    rows: dict[tuple, list] = {}
    kinds_drawn: set[str] = set()
    for op in pattern.ops.values():
        rows.setdefault(op.resource, []).append(op)
        kinds_drawn.add(op.kind)

    def order_key(resource: tuple) -> tuple:
        return (0 if resource[0] == "gpu" else 1,) + resource[1:]

    lines = [f"period T = {T:.6g}s, {len(pattern.ops)} ops"]
    for resource in sorted(rows, key=order_key):
        canvas = [" "] * width
        for op in sorted(rows[resource], key=lambda o: o.start):
            label = f"{op.kind}{op.index}[{op.shift}]"
            a = int(op.start * scale)
            b = max(a + 1, int(op.end * scale))
            for pos in range(a, min(b, 2 * width)):
                canvas[pos % width] = OP_KINDS[op.kind].glyph
            # place the label at the op start if it fits
            for j, ch in enumerate(label):
                pos = (a + j) % width
                if a + j < b or canvas[pos] != " ":
                    canvas[pos] = ch
        lines.append(f"{_resource_label(resource):>10s} |{''.join(canvas)}|")
    # legend: one entry per distinct glyph actually drawn, registry order
    seen: dict[str, str] = {}
    for kind, meta in OP_KINDS.items():
        if kind in kinds_drawn and meta.glyph not in seen:
            seen[meta.glyph] = meta.description.split()[0]
    legend = "  ".join(f"{glyph}={desc}" for glyph, desc in seen.items())
    lines.append(f"{'':>10s}  {legend}  [h]=index shift")
    return "\n".join(lines)
