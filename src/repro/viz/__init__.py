"""Text visualisation helpers."""

from .gantt import render_gantt
from .report import chain_report, schedule_report

__all__ = ["render_gantt", "chain_report", "schedule_report"]
