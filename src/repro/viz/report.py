"""Human-readable reports on chains and schedules.

``chain_report`` tabulates the per-layer profile (where the time, weight
and activation mass sits); ``schedule_report`` explains a solved
schedule: stage map, per-GPU load and memory breakdown, utilization and
the memory headroom that bounds further batching.
"""

from __future__ import annotations

from ..core.chain import Chain
from ..core.memory import stage_memory_breakdown
from ..core.pattern import PeriodicPattern
from ..core.platform import GB, Platform

__all__ = ["chain_report", "schedule_report"]


def chain_report(chain: Chain, *, top: int | None = None) -> str:
    """Per-layer profile table, optionally only the ``top`` heaviest
    layers by compute."""
    rows = []
    for l in range(1, chain.L + 1):
        layer = chain.layer(l)
        rows.append(
            (
                layer.u_f + layer.u_b,
                f"{l:4d} {layer.name[:34]:<34} {layer.u_f * 1e3:8.2f} "
                f"{layer.u_b * 1e3:8.2f} {layer.weights / 2**20:8.1f} "
                f"{layer.activation / 2**20:8.1f}",
            )
        )
    if top is not None:
        rows = sorted(rows, reverse=True)[:top]
    header = (
        f"chain {chain.name!r}: L={chain.L}, U={chain.total_compute():.4f}s\n"
        f"{'  l':>4} {'layer':<34} {'uF (ms)':>8} {'uB (ms)':>8} "
        f"{'W (MiB)':>8} {'a (MiB)':>8}"
    )
    return "\n".join([header] + [r for _, r in rows])


def schedule_report(
    chain: Chain, platform: Platform, pattern: PeriodicPattern
) -> str:
    """Stage map, loads, memory breakdown and utilization of a schedule."""
    alloc = pattern.allocation
    T = pattern.period
    lines = [
        f"period {T:.6g}s  ({1 / T:.3f} batches/s; "
        f"ideal balance {chain.total_compute() / platform.n_procs:.6g}s)"
    ]
    lines.append(
        f"{'stage':>6} {'layers':>9} {'gpu':>4} {'load (s)':>9} {'load %T':>8}"
    )
    for i, (stage, proc) in enumerate(zip(alloc.stages, alloc.procs)):
        load = stage.compute(chain)
        lines.append(
            f"{i:6d} {f'{stage.start}-{stage.end}':>9} {proc:4d} "
            f"{load:9.4f} {100 * load / T:7.1f}%"
        )
    peaks = pattern.memory_peaks(chain)
    lines.append(
        f"{'gpu':>4} {'util %':>7} {'peak mem (GiB)':>15} {'weights':>8} "
        f"{'buffers':>8} {'headroom':>9}"
    )
    for p in sorted(alloc.procs_used()):
        load = sum(
            alloc.stages[i].compute(chain) for i in alloc.stages_on_proc(p)
        )
        weights = buffers = 0.0
        for i in alloc.stages_on_proc(p):
            s = alloc.stages[i]
            bd = stage_memory_breakdown(chain, s.start, s.end, 0)
            weights += bd.weights
            buffers += bd.buffers
        lines.append(
            f"{p:4d} {100 * load / T:6.1f}% {peaks[p] / GB:15.2f} "
            f"{weights / GB:8.2f} {buffers / GB:8.2f} "
            f"{(platform.memory - peaks[p]) / GB:8.2f}G"
        )
    return "\n".join(lines)
