"""Cross-instance warm starts for the solver stack (ROADMAP item 4).

A sweep solves thousands of *neighboring* instances: the same chain at
many memory capacities, bandwidths and processor counts.  Each solver
layer rederives work that a neighboring instance already paid for — the
DP rebuilds its per-level candidate tensors on every binary-search
probe, the MILP rebuilds its period-independent skeleton when only the
memory capacity changed, and every period search re-probes targets a
neighbor already *certified* infeasible.

This module holds the shared state that lets solves reuse each other,
under one hard rule: **warm starts never change results**.  Every
mechanism is either an exact-key memo of a pure deterministic function,
or a certificate transfer whose soundness is a theorem of the model:

* ``dp_rows`` — per-level candidate-stage constants of the MadPipe DP
  (:meth:`repro.algorithms.madpipe_dp._LevelDP._static_rows`): pure
  functions of (chain, P, β, grid), independent of the probe target,
  the period cap and the memory capacity — shared across probes,
  searches and instances;
* ``phase1`` — exact-key memo of whole :func:`algorithm1` searches
  (same chain, platform, grid, iterations, restriction ⇒ same result;
  MadPipe runs the identical contiguous search up to three times per
  instance across its fallback and certification paths);
* ``onef1b`` — exact-key memo of the pure 1F1B\\* minimal-period
  search;
* ``skeletons`` — MILP skeleton templates keyed *without* the memory
  capacity: only the memory-row upper bounds ``M − const`` involve
  ``M``, so :meth:`repro.ilp.formulation.MilpSkeleton.retarget`
  rebuilds a neighbor's skeleton for a new capacity in O(rows) with
  float-identical bounds;
* ``frontier`` — certified-infeasible MILP probes ``(T, M)``.
  Feasibility of the fixed-period MILP is monotone in ``T`` (shift
  inequalities only relax) *and* in ``M`` (memory rows only relax), so
  a probe certified infeasible at ``(T′, M′)`` proves every probe with
  ``T ≤ T′`` and ``M ≤ M′`` infeasible — those probes are answered
  from the frontier without invoking HiGHS.  Only HiGHS's *proven*
  ``infeasible`` status enters the frontier; budget ``timeout``\\ s
  never do.

Activation is explicit and context-local: the sweep harness wraps each
instance in :func:`activate` when ``run_grid(..., warm_start=True)``;
everything else (direct :func:`repro.algorithms.madpipe.madpipe` calls,
``warm_start=False`` sweeps) runs cold and byte-identical to previous
releases.  The context is a per-process singleton, so serial sweeps
share one database across instances and pooled sweeps share one per
worker process.

Reuse is reported through the ``warm.*`` counters on the obs registry:
``warm.dp_reuse`` (DP level-tensor and whole-search reuse),
``warm.onef1b_hits``, ``warm.skeleton_reuse``, ``warm.probes_saved``
(DP + MILP probes answered without solving) and ``warm.bracket_hits``
(period searches whose opening bracket was seeded by a neighbor's
certificate).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Mapping

import numpy as np

__all__ = [
    "LRU",
    "WarmContext",
    "activate",
    "active_warm",
    "canonical_value",
    "chain_fingerprint",
    "platform_fingerprint",
    "process_context",
    "request_fingerprint",
    "reset_process_context",
]

#: Whole-search memo bound (phase-1 and 1F1B* searches are small; the
#: bound only guards unbounded growth on very long-lived processes).
_MEMO_CAP = 256
#: Skeleton templates are the largest cached objects (dense constraint
#: matrices); keep only the most recent allocations.
_SKELETON_CAP = 32


def chain_fingerprint(chain) -> tuple:
    """A value-based identity for a chain, stable across processes.

    Sweep workers rebuild chains from network names, so object identity
    cannot key a cross-instance cache; the fingerprint hashes the cached
    prefix arrays every solver layer actually reads.
    """
    fp = getattr(chain, "_warm_fingerprint", None)
    if fp is not None:
        return fp
    h = hashlib.sha1()
    for arr in (chain._cum_u, chain._cum_w, chain._cum_a_in, chain._act):
        h.update(np.ascontiguousarray(arr).tobytes())
    fp = (chain.name, chain.L, h.hexdigest())
    try:
        object.__setattr__(chain, "_warm_fingerprint", fp)
    except (AttributeError, TypeError):
        pass  # frozen/slotted chains: recompute per call
    return fp


def platform_fingerprint(platform) -> tuple:
    """Value-based identity for a platform (exact raw bytes/s values)."""
    return canonical_value(
        (platform.n_procs, platform.memory, platform.bandwidth)
    )


def canonical_value(value):
    """Canonical, hashable form of a request value.

    Two structurally-equivalent values — regardless of dict key order,
    tuple-vs-list spelling or int-vs-float numeric type (``4`` vs
    ``4.0``) — map to the same canonical form; any value difference maps
    to a distinct one.  Numbers are compared as floats and rendered via
    ``float.hex`` so the canonical form is exact (no decimal rounding).
    Dataclasses (e.g. :class:`~repro.algorithms.madpipe_dp.Discretization`)
    canonicalize as their type name plus field mapping.  Used by the
    plan-server request fingerprints (:mod:`repro.serve`) and shared
    with the warm-start keys here.
    """
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, bool):  # before int: True must not equal 1.0
        return ("bool", value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return ("num", float(value).hex())
    if isinstance(value, bytes):
        return ("bytes", value)
    if isinstance(value, Mapping):
        return ("map",) + tuple(
            sorted((str(k), canonical_value(v)) for k, v in value.items())
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            "obj",
            type(value).__name__,
            canonical_value(
                {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(canonical_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted(map(repr, map(canonical_value, value))))
    if isinstance(value, np.ndarray):
        return (
            "arr",
            value.shape,
            str(value.dtype),
            np.ascontiguousarray(value).tobytes(),
        )
    if hasattr(value, "to_dict"):  # Chain and friends
        return ("obj", type(value).__name__, canonical_value(value.to_dict()))
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def request_fingerprint(chain, platform, algorithm: str, opts: Mapping) -> str:
    """Canonical fingerprint of one planning request.

    A deterministic hex digest of (chain values, platform values,
    algorithm, options), independent of option key order and of
    int-vs-float numeric spelling.  Two requests with the same
    fingerprint produce bit-identical :func:`repro.api.plan` results
    (the chain fingerprint includes the chain *name* because certificate
    source labels embed it).  This is the key of the plan-server cache
    (:mod:`repro.serve`).
    """
    payload = (
        "plan/v1",
        chain_fingerprint(chain),
        platform_fingerprint(platform),
        str(algorithm),
        canonical_value(dict(opts)),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class LRU(OrderedDict):
    """Tiny move-to-front dict with a capacity bound."""

    def __init__(self, cap: int):
        super().__init__()
        self.cap = cap

    def hit(self, key):
        if key not in self:
            return None
        self.move_to_end(key)
        return self[key]

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.cap:
            self.popitem(last=False)


#: Backward-compatible alias (the class predates the serve layer).
_LRU = LRU


class WarmContext:
    """The per-process warm-start database.

    All lookups are exact-key; see the module docstring for why each
    table is result-preserving.  The context is only ever touched from
    code running under :func:`activate`, one instance at a time per
    process, so no locking is needed.
    """

    def __init__(self) -> None:
        self.dp_rows: dict[tuple, dict] = {}
        self.phase1 = _LRU(_MEMO_CAP)
        self.onef1b = _LRU(_MEMO_CAP)
        self.skeletons = _LRU(_SKELETON_CAP)
        # frontier: key -> list of certified-infeasible (T, capacity) points
        self.frontier: dict[tuple, list[tuple[float, float]]] = {}

    # -- DP level-tensor workspace -----------------------------------------

    def dp_workspace(self, key: tuple) -> dict:
        """The shared ``_static_rows`` cache for one (chain, P, β, grid)."""
        ws = self.dp_rows.get(key)
        if ws is None:
            ws = self.dp_rows[key] = {}
        return ws

    # -- certified-infeasible probe frontier -------------------------------

    def frontier_dominated(self, key: tuple, T: float, capacity: float) -> bool:
        """Is a probe at ``(T, capacity)`` dominated by a recorded
        certificate?  Infeasible at ``(T′, M′)`` proves infeasible at
        every ``T ≤ T′, M ≤ M′`` (feasibility is monotone in both)."""
        pts = self.frontier.get(key)
        if not pts:
            return False
        return any(T <= Tr and capacity <= Mr for Tr, Mr in pts)

    def frontier_add(self, key: tuple, T: float, capacity: float) -> None:
        """Record a *certified* infeasible probe, pruning dominated points."""
        pts = self.frontier.setdefault(key, [])
        if any(T <= Tr and capacity <= Mr for Tr, Mr in pts):
            return  # already implied
        pts[:] = [(Tr, Mr) for Tr, Mr in pts if not (Tr <= T and Mr <= capacity)]
        pts.append((T, capacity))


_active: ContextVar[WarmContext | None] = ContextVar(
    "repro_warm_context", default=None
)
_process_ctx: WarmContext | None = None


def active_warm() -> WarmContext | None:
    """The context-local warm-start database, or ``None`` (cold)."""
    return _active.get()


def process_context() -> WarmContext:
    """The lazily-created per-process singleton database."""
    global _process_ctx
    if _process_ctx is None:
        _process_ctx = WarmContext()
    return _process_ctx


def reset_process_context() -> None:
    """Drop the process singleton (tests and benchmarks)."""
    global _process_ctx
    _process_ctx = None


@contextmanager
def activate(enabled: bool = True) -> Iterator[WarmContext | None]:
    """Install the process database for the block (``enabled=True``) or
    force the block cold (``enabled=False`` masks any outer context, so
    a ``warm_start=False`` sweep stays cold even after warm ones ran in
    the same process)."""
    ctx = process_context() if enabled else None
    token = _active.set(ctx)
    try:
        yield ctx
    finally:
        _active.reset(token)
