#!/usr/bin/env python
"""Run the DP hot-path benchmark and record it to ``BENCH_dp.json``.

The JSON file is the repo's performance trajectory for the MadPipe DP:
each entry of ``"runs"`` is one (network, grid) measurement of
``algorithm1`` — vectorized solver vs the naive reference — produced by
``benchmarks/bench_dp_hotpath.py``.  Subsequent performance PRs should
re-run this script and compare against the committed numbers before and
after their change.

Usage::

    PYTHONPATH=src:benchmarks python scripts/bench_report.py [--smoke] [-o BENCH_dp.json]

``--smoke`` does a single-repeat, coarse-grid pass (used by CI to keep
the script from rotting); full mode times coarse/default/paper grids on
ResNet-50 and ResNet-101 with best-of-3 repeats.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_dp_hotpath import render, run_bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1 repeat, coarse grid only — just proves the harness works",
    )
    parser.add_argument(
        "-o", "--out", default=str(REPO_ROOT / "BENCH_dp.json"), help="output path"
    )
    args = parser.parse_args()

    if args.smoke:
        runs = run_bench(
            networks=("resnet50",),
            grids=("coarse",),
            repeats=1,
            iterations=4,
            reference_grids=("coarse",),
        )
    else:
        runs = run_bench()

    payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": args.smoke,
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1) + "\n")

    print(render(runs))
    ratios = [r["speedup"] for r in runs if "speedup" in r]
    if ratios:
        print(f"\nmin speedup vs naive reference: {min(ratios):.1f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
