#!/usr/bin/env python
"""Run the hot-path benchmarks and record them to ``BENCH_*.json``.

The JSON files are the repo's performance trajectory: each entry of
``"runs"`` is one measurement of a fast path raced against its kept
reference implementation.  Subsequent performance PRs should re-run this
script and compare against the committed numbers before and after their
change.

* ``--suite dp`` → ``BENCH_dp.json`` via ``benchmarks/bench_dp_hotpath.py``
  (vectorized MadPipe-DP vs the naive recursion);
* ``--suite phase2`` → ``BENCH_phase2.json`` via
  ``benchmarks/bench_phase2_hotpath.py`` (ILP period search and the
  1F1B\\* kernel vs their references);
* ``--suite obs`` → ``BENCH_obs.json`` via
  ``benchmarks/bench_obs_overhead.py`` (instrumentation cost of the
  observability layer in disabled/metrics/traced modes);
* ``--suite certify`` → ``BENCH_certify.json`` via
  ``benchmarks/bench_certify.py`` (cost of the discrete-event
  certification gate and the seeded robustness stress test);
* ``--suite warm`` → ``BENCH_warm.json`` via
  ``benchmarks/bench_warm_sweep.py`` (cold vs warm full-grid sweep wall
  time, probes saved by the warm-start database);
* ``--suite serve`` → ``BENCH_serve.json`` via
  ``benchmarks/bench_serve.py`` (plan-service QPS under a Zipf traffic
  replay vs naive serial ``api.plan``, hit/coalesce rates);
* ``--suite ingest`` → ``BENCH_ingest.json`` via
  ``benchmarks/bench_ingest.py`` (measured-profile ingestion +
  calibration throughput on clean vs damaged traces, byte-identity
  asserted before reporting);
* ``--suite zb`` → ``BENCH_zb.json`` via
  ``benchmarks/bench_zero_bubble.py`` (certified zero-bubble B/W-split
  periods vs 1F1B\\* on GPT-style chains under tight memory; a strict
  certified win on at least one budget is asserted before reporting);
* ``--suite chaos`` → ``BENCH_chaos.json`` via
  ``benchmarks/bench_chaos.py`` (seeded overload/failure soak of the
  plan service; all resilience invariants — bit-identity, certified
  degraded answers, full accounting, bounded recovery, clean store —
  are asserted before reporting);
* ``--suite all`` (default) → all of the above.

Usage::

    PYTHONPATH=src:benchmarks python scripts/bench_report.py [--smoke] [--suite dp|phase2|all]

``--smoke`` shrinks every suite to a single quick instance (used by CI
to keep the script from rotting).
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

import bench_certify  # noqa: E402
import bench_chaos  # noqa: E402
import bench_dp_hotpath  # noqa: E402
import bench_ingest  # noqa: E402
import bench_obs_overhead  # noqa: E402
import bench_phase2_hotpath  # noqa: E402
import bench_serve  # noqa: E402
import bench_warm_sweep  # noqa: E402
import bench_zero_bubble  # noqa: E402


def _payload(smoke: bool, runs) -> dict:
    return {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": smoke,
        "python": platform_mod.python_version(),
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }


def _summarize(records: list[dict]) -> None:
    """Per-run speedup range plus the aggregate (total ref / total fast);
    tolerant of records without a reference measurement."""
    ratios = [r["speedup"] for r in records if "speedup" in r]
    fast = sum(r.get("fast_s", 0.0) for r in records)
    ref = sum(r.get("reference_s", 0.0) for r in records if "reference_s" in r)
    if ratios:
        agg = f", aggregate {ref / fast:.2f}x" if fast > 0 and ref > 0 else ""
        print(
            f"speedup vs reference: min {min(ratios):.2f}x "
            f"max {max(ratios):.2f}x{agg}"
        )


def run_dp(smoke: bool, out_dir: Path) -> None:
    if smoke:
        runs = bench_dp_hotpath.run_bench(
            networks=("resnet50",),
            grids=("coarse",),
            repeats=1,
            iterations=4,
            reference_grids=("coarse",),
        )
    else:
        runs = bench_dp_hotpath.run_bench()
    out = out_dir / "BENCH_dp.json"
    out.write_text(json.dumps(_payload(smoke, runs), indent=1) + "\n")
    print(bench_dp_hotpath.render(runs))
    _summarize(runs)
    print(f"wrote {out}\n")


def run_phase2(smoke: bool, out_dir: Path) -> None:
    result = bench_phase2_hotpath.run_bench(smoke=smoke)
    out = out_dir / "BENCH_phase2.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_phase2_hotpath.render(result))
    for name in ("ilp", "onef1b"):
        print(f"{name}: ", end="")
        _summarize(result[name])
    print(f"wrote {out}\n")


def run_obs(smoke: bool, out_dir: Path) -> None:
    if smoke:
        runs = [
            bench_obs_overhead.bench_dp("toy8", repeats=1, iterations=4),
            bench_obs_overhead.bench_onef1b("toy8", calls=50, repeats=1),
        ]
    else:
        runs = bench_obs_overhead.bench_all()
    out = out_dir / "BENCH_obs.json"
    out.write_text(json.dumps(_payload(smoke, runs), indent=1) + "\n")
    for r in runs:
        print(
            f"{r['bench']:>8} {r['network']:>10}: disabled {r['disabled_s']:.4f}s"
            f" metrics {r['metrics_s']:.4f}s traced {r['traced_s']:.4f}s"
            f" (traced/disabled {r['overhead_traced']:.2f}x)"
        )
    print(f"wrote {out}\n")


def run_certify(smoke: bool, out_dir: Path) -> None:
    if smoke:
        runs = [
            bench_certify.bench_gate("toy8", repeats=1, iterations=4),
            bench_certify.bench_verify("toy8", calls=10, repeats=1, iterations=4),
            bench_certify.bench_robustness(
                "toy8", samples=8, repeats=1, iterations=4
            ),
        ]
    else:
        runs = bench_certify.bench_all()
    out = out_dir / "BENCH_certify.json"
    out.write_text(json.dumps(_payload(smoke, runs), indent=1) + "\n")
    for r in runs:
        if r["bench"] == "gate":
            print(
                f"    gate {r['network']:>10}: uncertified {r['uncertified_s']:.4f}s"
                f" certified {r['certified_s']:.4f}s"
                f" ({r['overhead_certified']:.2f}x)"
            )
        elif r["bench"] == "verify":
            print(
                f"  verify {r['network']:>10}: {r['per_call_s'] * 1e3:.2f}ms/call"
                f" ({r['periods_simulated']} periods simulated)"
            )
        else:
            print(
                f"  robust {r['network']:>10}: {r['total_s']:.4f}s for"
                f" {r['samples']} samples"
                f" ({r['per_sample_s'] * 1e3:.2f}ms/sample)"
            )
    print(f"wrote {out}\n")


def run_warm(smoke: bool, out_dir: Path) -> None:
    result = bench_warm_sweep.run_bench(smoke=smoke)
    out = out_dir / "BENCH_warm.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_warm_sweep.render(result))
    print(f"wrote {out}\n")


def run_serve(smoke: bool, out_dir: Path) -> None:
    result = bench_serve.run_bench(smoke=smoke)
    out = out_dir / "BENCH_serve.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_serve.render(result))
    print(f"wrote {out}\n")


def run_ingest(smoke: bool, out_dir: Path) -> None:
    result = bench_ingest.run_bench(smoke=smoke)
    out = out_dir / "BENCH_ingest.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_ingest.render(result))
    print(f"wrote {out}\n")


def run_zb(smoke: bool, out_dir: Path) -> None:
    result = bench_zero_bubble.run_bench(smoke=smoke)
    out = out_dir / "BENCH_zb.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_zero_bubble.render(result))
    print(f"wrote {out}\n")


def run_chaos(smoke: bool, out_dir: Path) -> None:
    result = bench_chaos.run_soak(smoke=smoke)
    out = out_dir / "BENCH_chaos.json"
    out.write_text(json.dumps(_payload(smoke, result), indent=1) + "\n")
    print(bench_chaos.render(result))
    print(f"wrote {out}\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one quick instance per suite — just proves the harness works",
    )
    parser.add_argument(
        "--suite",
        choices=(
            "dp", "phase2", "obs", "certify", "warm", "serve", "ingest", "zb",
            "chaos", "all",
        ),
        default="all",
        help="which benchmark suite(s) to run",
    )
    parser.add_argument(
        "-o", "--out-dir", default=str(REPO_ROOT), help="directory for BENCH_*.json"
    )
    args = parser.parse_args()

    out_dir = Path(args.out_dir)
    if args.suite in ("dp", "all"):
        run_dp(args.smoke, out_dir)
    if args.suite in ("phase2", "all"):
        run_phase2(args.smoke, out_dir)
    if args.suite in ("obs", "all"):
        run_obs(args.smoke, out_dir)
    if args.suite in ("certify", "all"):
        run_certify(args.smoke, out_dir)
    if args.suite in ("warm", "all"):
        run_warm(args.smoke, out_dir)
    if args.suite in ("serve", "all"):
        run_serve(args.smoke, out_dir)
    if args.suite in ("ingest", "all"):
        run_ingest(args.smoke, out_dir)
    if args.suite in ("zb", "all"):
        run_zb(args.smoke, out_dir)
    if args.suite in ("chaos", "all"):
        run_chaos(args.smoke, out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
