#!/usr/bin/env python
"""CI guard for the public API surface.

Checks, in order:

1. ``import repro`` succeeds and every name in ``repro.__all__`` (and
   ``repro.api.__all__``) resolves — deprecated names excepted, which
   must resolve *with* a ``DeprecationWarning``;
2. no ``DeprecationWarning`` escapes the internal modules: planning an
   instance through :func:`repro.api.plan` with warnings promoted to
   errors must not raise (internal code imports from submodules, never
   through the deprecated top-level shims);
3. each deprecated name warns exactly once per process, then resolves
   silently;
4. the facade works end to end on a toy instance;
5. the certification surface is pinned: ``repro.api.certify`` is
   callable, every ``plan()`` result carries an ``ok`` certificate,
   and two same-seed robustness reports are identical;
6. the serving surface is pinned: ``repro.api.serve`` constructs a
   ``PlanService``, a served plan round-trips through
   ``PlanResult.to_json()``/``from_json()`` and matches a direct
   ``api.plan`` call bit for bit;
7. the resilience surface is pinned: the typed overload errors are
   exported, ``ResilienceConfig()`` defaults disable every mechanism,
   ``serve()`` accepts the resilience knobs, and a degraded reply is
   an explicit ``status="degraded"`` with a real certificate.

Exit code 0 on success; any failure raises and exits non-zero.

Usage::

    PYTHONPATH=src python scripts/check_public_api.py
"""

from __future__ import annotations

import sys
import warnings

# third-party deps emit their own deprecation chatter during first
# import; get them loaded before promoting DeprecationWarning to error
import numpy  # noqa: F401
import scipy  # noqa: F401

try:
    import networkx  # noqa: F401
except ImportError:
    pass


def main() -> int:
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import repro
        from repro import api, obs  # noqa: F401

    deprecated = set(repro._DEPRECATED)

    # 1. every public name resolves; deprecated ones only under a filter
    for name in repro.__all__:
        if name in deprecated:
            continue
        assert getattr(repro, name) is not None, f"repro.{name} is None"
    for name in api.__all__:
        assert getattr(api, name) is not None, f"repro.api.{name} is None"
    print(f"resolved {len(repro.__all__)} top-level + {len(api.__all__)} api names")

    # the sweep warm-start knob is part of the stable surface: a
    # keyword-only parameter defaulting to True (CLI: --no-warm-start)
    import inspect

    sig = inspect.signature(api.sweep)
    ws = sig.parameters.get("warm_start")
    assert ws is not None, "api.sweep() lost its warm_start parameter"
    assert ws.default is True, f"api.sweep(warm_start=...) default changed: {ws.default!r}"
    assert ws.kind is inspect.Parameter.KEYWORD_ONLY, "warm_start must be keyword-only"
    print("api.sweep(warm_start=True) surface pinned")

    # the schedule-family surface: plan() takes a keyword-only
    # schedule_family defaulting to "1f1b", both families are registered,
    # and the op-kind registry is re-exported with its stable entries
    sf = inspect.signature(api.plan).parameters.get("schedule_family")
    assert sf is not None, "api.plan() lost its schedule_family parameter"
    assert sf.default == "1f1b", f"schedule_family default changed: {sf.default!r}"
    assert sf.kind is inspect.Parameter.KEYWORD_ONLY, "schedule_family must be keyword-only"
    assert api.SCHEDULE_FAMILIES == ("1f1b", "zero_bubble"), (
        f"SCHEDULE_FAMILIES changed: {api.SCHEDULE_FAMILIES!r}"
    )
    for kind in (api.F, api.B, api.W, api.CF, api.CB):
        meta = api.OP_KINDS[kind]
        assert meta.name == kind and meta.category in ("compute", "comm")
        assert api.is_compute(kind) != api.is_comm(kind)
    d_b, d_w = api.split_backward(2.0, fraction=0.5)
    assert d_b == 1.0 and d_w == 1.0, "split_backward(2.0) must halve"
    assert api.PLAN_SCHEMA_VERSION == 2, "plan schema version pin"
    print("api.plan(schedule_family=...) + op-kind registry surface pinned")

    # 2. internal modules must not route through the deprecated shims
    chain = repro.uniform_chain(6)
    platform = repro.Platform.of(2, 8.0, 12.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = api.plan(chain, platform, iterations=2,
                          grid=repro.Discretization.coarse(), trace=True)
    assert result.feasible, "toy plan came back infeasible"
    assert result.trace is not None and len(result.trace) > 0
    assert result.metrics.get("madpipe.runs") == 1
    print(f"plan ok: period={result.period:.4f}, {len(result.trace)} spans")
    # snapshot before certify() below refreshes the certificate in place
    plan_json = result.to_json()

    # 5. the certification surface: api.certify is callable, plan results
    # carry an ok certificate, same-seed robustness reports are identical
    assert callable(api.certify), "repro.api.certify is not callable"
    cert = result.certificate
    assert cert is not None and cert.ok, "plan() result lacks an ok certificate"
    assert cert.mode in ("verified", "fallback")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        c1 = api.certify(chain, platform, result, samples=8, seed=3)
        c2 = api.certify(chain, platform, result, samples=8, seed=3)
    assert c1.ok and c1.robustness is not None
    assert c1.to_dict() == c2.to_dict(), "same-seed certify reports differ"
    assert result.certificate is c2, "certify() must refresh PlanResult"
    print(
        f"certify ok: worst period inflation "
        f"{c1.robustness.worst_period_inflation:.4f}, deterministic"
    )

    # 6. the serving surface: api.serve() builds a PlanService whose
    # replies are bit-identical to direct api.plan, and the PlanResult
    # JSON wire format round-trips
    import asyncio

    assert callable(api.serve), "repro.api.serve is not callable"
    assert api.PlanService is not None, "repro.api.PlanService missing"
    reloaded = api.PlanResult.from_json(plan_json)
    assert reloaded.to_json() == plan_json, "PlanResult JSON round-trip"

    async def _served():
        async with api.serve(max_workers=0) as service:
            return await service.submit(
                chain, platform, iterations=2, grid=repro.Discretization.coarse()
            )

    served = asyncio.run(_served())
    assert served.to_json() == plan_json, (
        "served plan differs from direct api.plan"
    )
    print("serve ok: served plan bit-identical to api.plan, JSON round-trips")

    # 7. the resilience surface: typed errors exported, the default
    # config disables every mechanism (PR 7 behaviour preserved), and a
    # degraded answer is explicit and certified
    for name in ("OverloadedError", "CircuitOpenError",
                 "DeadlineExceededError", "PoolExhaustedError",
                 "ResilienceConfig"):
        assert name in api.__all__, f"api.__all__ lost {name}"
    for exc in (api.OverloadedError, api.CircuitOpenError,
                api.DeadlineExceededError, api.PoolExhaustedError):
        assert issubclass(exc, RuntimeError), f"{exc.__name__} not a RuntimeError"
    assert api.OverloadedError("x", retry_after_s=2.0).retry_after_s == 2.0
    default_cfg = api.ResilienceConfig()
    assert not default_cfg.admission_enabled and not default_cfg.breaker_enabled
    assert not default_cfg.degraded_fallback
    for knob in ("resilience", "seed", "backoff_cap_s", "max_pool_restarts"):
        assert knob in inspect.signature(api.serve).parameters, (
            f"api.serve() lost its {knob} parameter"
        )

    async def _degraded():
        from repro.testing import Fault, faults
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            faults.install(
                [Fault(site="serve_solve", action="raise", times=-1)], tmp
            )
            try:
                async with api.serve(
                    max_workers=0, max_retries=0,
                    resilience=api.ResilienceConfig(degraded_fallback=True),
                ) as service:
                    return await service.handle(service.request(
                        chain, platform, iterations=2,
                        grid=repro.Discretization.coarse(),
                    ))
            finally:
                faults.clear()

    degraded = asyncio.run(_degraded())
    assert degraded.served_from == "degraded" and degraded.degraded
    assert degraded.result.status == "degraded"
    assert degraded.result.certificate is not None
    assert degraded.result.certificate.ok, "degraded reply lacks ok certificate"
    print("resilience ok: typed errors, inert defaults, certified degraded reply")

    # 3. deprecated names warn exactly once, then resolve silently
    for name in sorted(deprecated):
        repro._DEPRECATION_WARNED.discard(name)
        repro.__dict__.pop(name, None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = getattr(repro, name)
            second = getattr(repro, name)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1, (
            f"repro.{name}: expected exactly one DeprecationWarning, "
            f"got {len(dep)}"
        )
        assert first is second is not None
        print(f"deprecated repro.{name}: warns once, resolves")

    print("public API check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
