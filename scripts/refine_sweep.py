#!/usr/bin/env python
"""Refine cached MadPipe results with a finer DP grid.

Re-runs selected instances of ``results/paper_grid.json`` at
``Discretization.default()`` and keeps whichever valid period is better,
so a coarse first sweep can be polished incrementally.

Usage::

    python scripts/refine_sweep.py [network ...]
"""

from __future__ import annotations

import sys

from repro.algorithms import Discretization
from repro.core import Platform
from repro.experiments import ResultCache, paper_chain, run_instance


def main() -> int:
    networks = sys.argv[1:] or ["resnet101", "resnet50"]
    cache = ResultCache("results/paper_grid.json")
    todo = [
        r
        for r in sorted(cache._data.values(), key=lambda r: r.key)
        if r.network in networks and r.algorithm == "madpipe"
    ]
    print(f"refining {len(todo)} instances")
    improved = 0
    for old in todo:
        chain = paper_chain(old.network)
        platform = Platform.of(
            old.n_procs, old.memory_gb, old.bandwidth_gbps
        )
        new = run_instance(
            chain,
            platform,
            "madpipe",
            network=old.network,
            grid=Discretization.default(),
            iterations=10,
            ilp_time_limit=30.0,
        )
        if new.valid_period < old.valid_period:
            cache.put(new)
            improved += 1
            print(
                f"{old.network} P={old.n_procs} M={old.memory_gb:g} "
                f"b={old.bandwidth_gbps:g}: {old.valid_period:.4f} -> "
                f"{new.valid_period:.4f}"
            )
    print(f"improved {improved}/{len(todo)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
