#!/usr/bin/env python
"""Run the full paper evaluation grid (§5) and cache results to JSON.

Produces ``results/paper_grid.json`` with every (network, P, M, β,
algorithm) instance needed by Figs. 6, 7 and 8.  Instances already in the
cache are skipped, so a killed sweep resumes from where it stopped;
``--resume`` additionally re-runs cached instances that previously ended
in ``solver_timeout``/``error``.  Crashed or deadline-blowing instances
are retried ``--max-retries`` times with exponential backoff before the
sweep records a typed error result and moves on.

Usage::

    python scripts/run_paper_sweep.py [--fast] [--resume]
        [--max-retries N] [--instance-timeout S]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.algorithms import Discretization
from repro.experiments import (
    FIG8_PROCS,
    PAPER_BANDWIDTHS_GBPS,
    PAPER_MEMORIES_GB,
    PAPER_NETWORKS,
    PAPER_PROCS,
    ResultCache,
    run_grid,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced grid for quick checks"
    )
    parser.add_argument(
        "--out", default="results/paper_grid.json", help="cache file path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan instances out over N worker processes (1 = serial)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="also re-run cached instances that ended in solver_timeout/error",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per crashed/timed-out instance before recording an error",
    )
    parser.add_argument(
        "--instance-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-instance wall-clock deadline enforced inside the worker",
    )
    args = parser.parse_args()

    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(args.out, flush_every=8)
    grid = Discretization.coarse()
    kwargs = dict(
        grid=grid,
        iterations=8,
        ilp_time_limit=30.0,
        cache=cache,
        verbose=True,
        n_workers=args.workers,
        retry_failed=args.resume,
        max_retries=args.max_retries,
        instance_timeout=args.instance_timeout,
        on_exhausted="record",
    )

    t0 = time.time()
    if args.fast:
        run_grid(("resnet50",), (2, 4), (4.0, 8.0, 16.0), (12.0,), **kwargs)
    else:
        # Figs. 6 & 7: full (network, P, M, beta) grid
        run_grid(
            PAPER_NETWORKS,
            PAPER_PROCS,
            tuple(float(m) for m in PAPER_MEMORIES_GB),
            tuple(float(b) for b in PAPER_BANDWIDTHS_GBPS),
            **kwargs,
        )
        # Fig. 8: intermediate processor counts at beta = 12
        extra_procs = tuple(p for p in FIG8_PROCS if p not in PAPER_PROCS)
        run_grid(
            PAPER_NETWORKS,
            extra_procs,
            (4.0, 8.0, 12.0, 16.0),
            (12.0,),
            **kwargs,
        )
    print(f"sweep done in {time.time() - t0:.0f}s, {len(cache)} cached instances")
    return 0


if __name__ == "__main__":
    sys.exit(main())
