#!/usr/bin/env python
"""Run the full paper evaluation grid (§5) and cache results to JSON.

Produces ``results/paper_grid.json`` with every (network, P, M, β,
algorithm) instance needed by Figs. 6, 7 and 8.  Instances already in the
cache are skipped, so a killed sweep resumes from where it stopped;
``--resume`` additionally re-runs cached instances that previously ended
in ``solver_timeout``/``error``.  Crashed or deadline-blowing instances
are retried ``--max-retries`` times with exponential backoff before the
sweep records a typed error result and moves on.

All runtime flags are the canonical sweep options shared with
``repro sweep`` (defined once in :func:`repro.cli.sweep_options`); this
script only adds ``--fast`` and fixes the grid axes to the paper's.

Usage::

    python scripts/run_paper_sweep.py [--fast] [--resume] [--workers N]
        [--max-retries N] [--instance-timeout S] [--trace PATH]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import obs
from repro.algorithms import Discretization
from repro.cli import sweep_options
from repro.experiments import (
    FIG8_PROCS,
    PAPER_BANDWIDTHS_GBPS,
    PAPER_MEMORIES_GB,
    PAPER_NETWORKS,
    PAPER_PROCS,
    ResultCache,
    run_grid,
)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[sweep_options()]
    )
    parser.add_argument(
        "--fast", action="store_true", help="reduced grid for quick checks"
    )
    parser.add_argument(
        "--out", default="results/paper_grid.json", help="cache file path"
    )
    # paper defaults: keep going on exhausted instances, record them typed
    parser.set_defaults(on_error="record")
    args = parser.parse_args()

    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(args.out, flush_every=args.flush_every)
    registry = obs.MetricsRegistry()
    kwargs = dict(
        grid=getattr(Discretization, args.grid)(),
        iterations=args.iterations,
        ilp_time_limit=args.ilp_time_limit,
        schedule_family=args.schedule_family,
        cache=cache,
        verbose=not args.quiet,
        n_workers=args.workers,
        retry_failed=args.resume,
        max_retries=args.max_retries,
        instance_timeout=args.instance_timeout,
        on_exhausted=args.on_error,
        trace_path=args.trace,
        warm_start=not args.no_warm_start,
    )

    t0 = time.time()
    with obs.use_metrics(registry):
        if args.fast:
            run_grid(("resnet50",), (2, 4), (4.0, 8.0, 16.0), (12.0,), **kwargs)
        else:
            # Figs. 6 & 7: full (network, P, M, beta) grid
            run_grid(
                PAPER_NETWORKS,
                PAPER_PROCS,
                tuple(float(m) for m in PAPER_MEMORIES_GB),
                tuple(float(b) for b in PAPER_BANDWIDTHS_GBPS),
                **kwargs,
            )
            # Fig. 8: intermediate processor counts at beta = 12
            extra_procs = tuple(p for p in FIG8_PROCS if p not in PAPER_PROCS)
            run_grid(
                PAPER_NETWORKS,
                extra_procs,
                (4.0, 8.0, 12.0, 16.0),
                (12.0,),
                **kwargs,
            )
    print(f"sweep done in {time.time() - t0:.0f}s, {len(cache)} cached instances")
    if not args.quiet and len(registry):
        counters = registry.counters()
        print(
            "counters: "
            + " ".join(f"{k}={v}" for k, v in sorted(counters.items())[:8])
        )
    if args.trace:
        print(f"trace: {args.trace} (see 'repro trace summary {args.trace}')")
    return 0


if __name__ == "__main__":
    sys.exit(main())
