#!/usr/bin/env python
"""Scheduling a user-supplied profile (the intended production flow).

In practice one profiles each layer of the real model on the real GPU
(e.g. with PyTorch hooks), dumps a JSON file, and feeds it to MadPipe.
This example writes such a JSON profile by hand, loads it back through
the public API, schedules it, and prints the decisions — no model zoo
involved.

Run:  python examples/custom_profile.py
"""

import json
import tempfile
from pathlib import Path

from repro import Discretization, Platform, madpipe
from repro.profiling import load_chain

# A hand-written profile: times in seconds, sizes in bytes, as a real
# profiler would emit.  `activation` is the layer's output tensor for the
# profiled mini-batch; `weights` is a single copy of its parameters.
PROFILE = {
    "name": "my-transformer-encoder",
    "input_activation": 64e6,
    "layers": [
        {"name": "embed", "u_f": 0.004, "u_b": 0.006, "weights": 180e6, "activation": 64e6},
        *[
            {
                "name": f"block{i}",
                "u_f": 0.011,
                "u_b": 0.022,
                "weights": 42e6,
                "activation": 64e6,
            }
            for i in range(12)
        ],
        {"name": "head", "u_f": 0.006, "u_b": 0.010, "weights": 210e6, "activation": 2e6},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "profile.json"
        path.write_text(json.dumps(PROFILE))
        chain = load_chain(path)

    print(f"loaded {chain.name}: {chain.L} layers, U = {chain.total_compute() * 1e3:.1f} ms")
    platform = Platform.of(n_procs=4, memory_gb=2, bandwidth_gbps=24)
    result = madpipe(chain, platform, grid=Discretization.default(), ilp_time_limit=30)

    if not result.feasible:
        print("no memory-feasible schedule — add GPUs or memory")
        return
    print(
        f"schedule found: period {result.period * 1e3:.2f} ms "
        f"({1 / result.period:.0f} batches/s), {result.notes[-1]}"
    )
    for i, (stage, proc) in enumerate(
        zip(result.allocation.stages, result.allocation.procs)
    ):
        names = [chain.layer(l).name for l in (stage.start, stage.end)]
        print(
            f"  stage {i}: {names[0]} .. {names[1]} "
            f"(layers {stage.start}-{stage.end}) -> GPU {proc}"
        )


if __name__ == "__main__":
    main()
