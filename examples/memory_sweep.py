#!/usr/bin/env python
"""Capacity planning: how much GPU memory does a target throughput need?

A downstream-user scenario built on the experiment harness: sweep the
per-GPU memory for a chosen network and processor count, and report
achieved throughput (images/s at the profiled batch size), the pipeline
structure, and where memory stops being the bottleneck.

Run:  python examples/memory_sweep.py [network] [P]
      python examples/memory_sweep.py densenet121 4
"""

import sys

from repro import Discretization, Platform
from repro.experiments import paper_chain, run_instance

BATCH = 8  # images per mini-batch in the paper profiles


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "inception"
    procs = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    chain = paper_chain(network)
    seq = chain.total_compute()
    print(
        f"{network} on {procs} GPUs (beta = 12 GB/s); sequential throughput "
        f"{BATCH / seq:.1f} img/s"
    )
    print(
        f"{'M (GB)':>7} {'period (s)':>11} {'img/s':>8} {'speedup':>8} "
        f"{'stages':>7} {'optimizer time':>15}"
    )
    best = None
    for mem_gb in (3, 4, 6, 8, 10, 12, 14, 16):
        r = run_instance(
            chain,
            Platform.of(procs, mem_gb, 12),
            "madpipe",
            network=network,
            grid=Discretization.coarse(),
            iterations=8,
            ilp_time_limit=30,
        )
        if not r.feasible:
            print(f"{mem_gb:7d} {'infeasible':>11}")
            continue
        print(
            f"{mem_gb:7d} {r.valid_period:11.4f} {BATCH / r.valid_period:8.1f} "
            f"{r.speedup:7.2f}x {r.n_stages:7d} {r.runtime_s:14.1f}s"
        )
        if best is None or r.valid_period < best.valid_period * 0.995:
            best = r
    if best is not None:
        print(
            f"\nmemory stops paying off around M = {best.memory_gb:g} GB "
            f"(period {best.valid_period:.4f}s, {best.speedup:.2f}x speedup)"
        )


if __name__ == "__main__":
    main()
