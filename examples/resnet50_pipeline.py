#!/usr/bin/env python
"""The paper's flagship scenario: ResNet-50 on 1000x1000 images, batch 8.

Such large activations make single-GPU training impossible (the one-copy
footprint alone is ~8.5 GB before any pipelining) — exactly the regime
pipelined model parallelism targets.  This example reproduces one column
of the paper's Fig. 6: P = 8 GPUs at 12 GB/s, sweeping the memory limit,
and prints where each algorithm's schedule spends its memory.

Run:  python examples/resnet50_pipeline.py          (takes a few minutes)
"""

from repro import (
    Discretization,
    Platform,
    V100,
    linearize,
    madpipe,
    pipedream,
    profile_model,
    resnet50,
)
from repro.core import GB


def describe_memory(label: str, pattern, chain) -> None:
    peaks = pattern.memory_peaks(chain)
    pretty = ", ".join(f"gpu{p}={m / GB:.1f}" for p, m in sorted(peaks.items()))
    print(f"    {label} peak memory (GiB): {pretty}")


def main() -> None:
    graph = resnet50(image_size=1000)
    profile_model(graph, V100, batch_size=8)
    chain = linearize(graph)
    seq = chain.total_compute()
    print(
        f"ResNet-50 @1000px batch 8: {chain.L} chain layers, "
        f"sequential batch time {seq:.3f}s, "
        f"single-copy footprint "
        f"{(3 * chain.weights(1, chain.L) + chain.stored_activations(1, chain.L)) / GB:.1f} GiB"
    )
    print(f"{'M (GB)':>7} {'PipeDream':>12} {'MadPipe':>12} {'speedup':>8}")

    for mem_gb in (4, 6, 8, 12, 16):
        platform = Platform.of(8, mem_gb, 12)
        pd = pipedream(chain, platform)
        mp = madpipe(
            chain,
            platform,
            grid=Discretization.coarse(),
            iterations=8,
            ilp_time_limit=30,
        )
        pd_txt = f"{pd.period:.4f}" if pd.feasible else "infeasible"
        mp_txt = f"{mp.period:.4f}" if mp.feasible else "infeasible"
        ratio = (
            f"{pd.period / mp.period:5.2f}x"
            if pd.feasible and mp.feasible
            else "-"
        )
        print(f"{mem_gb:7d} {pd_txt:>12} {mp_txt:>12} {ratio:>8}")
        if mp.feasible:
            describe_memory("MadPipe", mp.pattern, chain)

    print(
        "\nNote: MadPipe stays feasible below PipeDream's memory floor, and "
        "wins clearly where PipeDream's optimistic memory estimate backfires "
        "(the non-monotonic PipeDream column; paper §5.2)."
    )


if __name__ == "__main__":
    main()
