#!/usr/bin/env python
"""Hybrid data + model parallelism (the paper's §6 perspective).

Splits P GPUs into G groups of r replicas: data parallelism shards the
batch inside each group (activations shrink, gradients pay a ring
all-reduce), while MadPipe pipelines the stages across groups.  The
sweet spot depends on the network: weight-heavy models hate all-reduce,
activation-heavy models love sharding.

Run:  python examples/hybrid_parallelism.py
"""

from repro import Discretization, Platform
from repro.algorithms import hybrid
from repro.experiments import paper_chain


def main() -> None:
    platform = Platform.of(n_procs=8, memory_gb=8, bandwidth_gbps=12)
    for network in ("resnet50", "inception"):
        chain = paper_chain(network)
        print(f"\n{network}: U = {chain.total_compute():.3f}s on {platform}")
        res = hybrid(
            chain,
            platform,
            grid=Discretization.coarse(),
            iterations=6,
            ilp_time_limit=20,
        )
        print(f"{'r (replicas)':>13} {'groups':>7} {'period (s)':>11}")
        for r, period in res.sweep:
            mark = "  <- best" if r == res.group_size else ""
            txt = f"{period:.4f}" if period != float("inf") else "infeasible"
            print(f"{r:13d} {platform.n_procs // r:7d} {txt:>11}{mark}")
        print(
            f"best: {res.n_groups} pipeline groups of {res.group_size} "
            f"replicas, period {res.period:.4f}s"
        )


if __name__ == "__main__":
    main()
