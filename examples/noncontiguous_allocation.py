#!/usr/bin/env python
"""Anatomy of a non-contiguous MadPipe schedule (paper §4.2, Figs. 4-5).

Builds a deliberately imbalanced chain — heavy in the middle, light at
both ends — where a contiguous split wastes a GPU on the light ends.
MadPipe's special processor picks up both end stages, and the phase-2 ILP
interleaves their forwards and backwards to keep the memory peak low
(the "best case" of the paper's Fig. 5).

Run:  python examples/noncontiguous_allocation.py
"""

from repro import Chain, Discretization, LayerProfile, Platform, madpipe, pipedream
from repro.core import GB
from repro.viz import render_gantt

MB = float(2**20)


def lopsided_chain() -> Chain:
    """A barbell: light head, two heavy middle layers, light tail.

    On 3 GPUs no contiguous split balances this (any cut strands a heavy
    layer with a light end), but head+tail together fit one GPU — the
    special processor's sweet spot."""
    layers = []
    for i in range(2):
        layers.append(
            LayerProfile(f"head{i}", u_f=0.4, u_b=0.8, weights=8 * MB, activation=96 * MB)
        )
    for i in range(2):
        layers.append(
            LayerProfile(f"mid{i}", u_f=1.5, u_b=3.0, weights=64 * MB, activation=64 * MB)
        )
    for i in range(2):
        layers.append(
            LayerProfile(f"tail{i}", u_f=0.4, u_b=0.8, weights=8 * MB, activation=24 * MB)
        )
    return Chain(layers, input_activation=96 * MB, name="lopsided")


def main() -> None:
    chain = lopsided_chain()
    platform = Platform.of(3, 1.5, 12)
    print(
        f"chain {chain.name}: U = {chain.total_compute():.1f}s, "
        f"platform: 3 GPUs x 1.5 GB"
    )

    pd = pipedream(chain, platform)
    if pd.feasible:
        print(f"PipeDream (contiguous): period {pd.period:.3f}s")
        print("  stages:", [(s.start, s.end) for s in pd.partitioning])

    mp = madpipe(chain, platform, grid=Discretization.default(), ilp_time_limit=30)
    print(f"MadPipe: period {mp.period:.3f}s  ({mp.notes[-1]})")
    alloc = mp.allocation
    for i, (stage, proc) in enumerate(zip(alloc.stages, alloc.procs)):
        tag = " (special)" if len(alloc.stages_on_proc(proc)) > 1 else ""
        print(
            f"  stage {i}: layers {stage.start}-{stage.end} on GPU {proc}{tag}, "
            f"load {stage.compute(chain):.2f}s"
        )
    peaks = mp.pattern.memory_peaks(chain)
    print(
        "  peak memory (GiB): "
        + ", ".join(f"gpu{p}={m / GB:.2f}" for p, m in sorted(peaks.items()))
    )
    print()
    print(render_gantt(mp.pattern, width=96))


if __name__ == "__main__":
    main()
