#!/usr/bin/env python
"""Quickstart: schedule a ResNet-50 across 4 simulated GPUs with MadPipe.

Walks the full public-API path: build a network graph, profile it on a
simulated device, linearize to a chain, run MadPipe and the PipeDream
baseline, verify the schedule by discrete-event execution, and render a
Gantt chart of one period.

Run:  python examples/quickstart.py
"""

from repro import (
    Discretization,
    Platform,
    V100,
    linearize,
    madpipe,
    pipedream,
    profile_model,
    render_gantt,
    resnet50,
    verify_pattern,
)


def main() -> None:
    # 1. Model + profile. 500px keeps the demo fast; the paper uses 1000px.
    graph = resnet50(image_size=500)
    profile_model(graph, V100, batch_size=8)
    chain = linearize(graph)
    print(f"chain: {chain.L} layers, one batch takes {chain.total_compute():.3f}s")

    # 2. Platform: 4 GPUs x 4 GB, 12 GB/s links (memory-constrained).
    platform = Platform.of(n_procs=4, memory_gb=4, bandwidth_gbps=12)

    # 3. Baseline and MadPipe.
    baseline = pipedream(chain, platform)
    print(
        f"PipeDream: internal estimate {baseline.dp_period:.4f}s, "
        f"valid schedule {baseline.period:.4f}s"
    )

    result = madpipe(
        chain, platform, grid=Discretization.default(), ilp_time_limit=30
    )
    print(
        f"MadPipe:   internal estimate {result.dp_period:.4f}s, "
        f"valid schedule {result.period:.4f}s  ({result.notes[-1]})"
    )
    if baseline.feasible:
        print(f"speedup over PipeDream: {baseline.period / result.period:.2f}x")

    # 4. Independent verification: execute the pattern for 12 periods.
    report = verify_pattern(chain, platform, result.pattern, periods=12)
    print(
        f"simulation: {report.completed_batches} batches, "
        f"steady throughput {report.steady_throughput:.2f}/s "
        f"(1/T = {1 / result.period:.2f}/s)"
    )
    peak = max(report.peak_memory.values())
    print(f"peak GPU memory: {peak / 2**30:.2f} GiB of {platform.memory / 2**30:.0f} GiB")

    # 5. One period, drawn.
    print()
    print(render_gantt(result.pattern, width=96))


if __name__ == "__main__":
    main()
